"""Unit tests for view extensions (deterministic and probabilistic, §3.1).

Extensions are Id-free: original identity is recorded in a provenance
side table, never as ``Id(n)`` marker nodes in the tree.
"""

from fractions import Fraction

import pytest

from repro.prob import boolean_probability
from repro.tp import parse_pattern
from repro.tp.embedding import evaluate
from repro.views import (
    View,
    anchor_via_marker,
    deterministic_extension,
    marker_label,
    parse_marker_label,
    probabilistic_extension,
)
from repro.workloads import paper


class TestLegacyMarkerShim:
    def test_roundtrip(self):
        with pytest.deprecated_call():
            label = marker_label(42)
        assert parse_marker_label(label) == 42

    def test_non_marker(self):
        assert parse_marker_label("bonus") is None
        assert parse_marker_label("Id(x)") is None

    def test_marker_label_warns_with_pointer(self):
        with pytest.warns(DeprecationWarning, match="provenance anchor sets"):
            marker_label(7)

    def test_parse_is_a_silent_decode_shim(self, recwarn):
        assert parse_marker_label("Id(3)") == 3
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]


class TestDeterministicExtension:
    def test_figure4_left(self, d_per, v1_bon):
        ext = deterministic_extension(d_per, v1_bon)
        assert ext.document.name == "doc(v1BON)"
        assert list(ext.subtree_roots) == [5]
        # The bonus subtree: laptop(44, 50) and pda(50) — and nothing else.
        labels = {n.label for n in ext.document.nodes()}
        assert {"laptop", "pda", "44", "50"} <= labels
        assert not any(parse_marker_label(label) is not None for label in labels)

    def test_provenance_maps_selected_root(self, d_per, v1_bon):
        ext = deterministic_extension(d_per, v1_bon)
        assert ext.provenance.copies_of(5) == (ext.subtree_roots[5],)
        assert ext.provenance.original_of(ext.subtree_roots[5]) == 5
        assert ext.provenance.holder_of(ext.subtree_roots[5]) == 5

    def test_v2_has_two_subtrees(self, d_per, v2_bon):
        ext = deterministic_extension(d_per, v2_bon)
        assert sorted(ext.subtree_roots) == [5, 7]

    def test_fresh_ids_are_disjoint_from_original(self, d_per, v1_bon):
        ext = deterministic_extension(d_per, v1_bon)
        # Copy semantics: Ids are fresh (sequential), original identity only
        # through the provenance table.
        assert ext.document.node(ext.subtree_roots[5]).label == "bonus"

    def test_queryable_through_doc_label(self, d_per, v1_bon):
        ext = deterministic_extension(d_per, v1_bon)
        result = evaluate(parse_pattern("doc(v1BON)/bonus/laptop"), ext.document)
        assert len(result) == 1


class TestProbabilisticExtension:
    def test_figure4_right_selection(self, ext_v1):
        assert ext_v1.selection == {5: Fraction(3, 4)}

    def test_subtree_preserves_internal_distribution(self, ext_v1):
        sub = ext_v1.result_subdocument(5)
        assert boolean_probability(sub, parse_pattern("bonus/laptop")) == Fraction(
            9, 10
        )
        assert boolean_probability(sub, parse_pattern("bonus/pda")) == 1

    def test_no_marker_nodes_anywhere(self, ext_v1):
        labels = {
            n.label for n in ext_v1.pdocument.ordinary_nodes() if n.label
        }
        assert not any(parse_marker_label(label) is not None for label in labels)

    def test_provenance_covers_every_copied_original(self, ext_v1):
        sub = ext_v1.result_subdocument(5)
        for original in (5, 24, 22, 31, 25, 26, 32, 23):
            copies = ext_v1.occurrence_copies(original, within=sub)
            assert len(copies) == 1
            assert ext_v1.provenance.original_of(copies[0]) == original
            assert ext_v1.provenance.holder_of(copies[0]) == 5

    def test_occurrences(self, ext_v2):
        assert ext_v2.occurrences[5] == {5}
        assert ext_v2.occurrences[24] == {5}
        assert ext_v2.occurrences[54] == {7}

    def test_selected_ancestors_or_self_nested(self):
        # Example 12's view selects nested nodes 9 (c2) and 11 (c3).
        p = paper.p3_example12()
        ext = probabilistic_extension(p, View("v", paper.example12_view()))
        assert ext.selected_ancestors_or_self(11) == [9, 11]
        assert ext.selected_ancestors_or_self(12) == [9, 11]
        assert ext.selected_ancestors_or_self(9) == [9]

    def test_nodes_between(self):
        p = paper.p3_example12()
        ext = probabilistic_extension(p, View("v", paper.example12_view()))
        assert ext.nodes_between(9, 11) == 3  # c2, b3, c3
        assert ext.nodes_between(9, 9) == 1

    def test_nodes_between_missing_raises(self):
        p = paper.p3_example12()
        ext = probabilistic_extension(p, View("v", paper.example12_view()))
        with pytest.raises(KeyError):
            ext.nodes_between(11, 9)  # 9 does not occur below 11

    def test_example11_indistinguishability(self):
        """The central §4.1 fact: (P̂1)_v = (P̂2)_v although q differs."""
        v = View("v", paper.example11_view())
        ext1 = probabilistic_extension(paper.p1_example11(), v)
        ext2 = probabilistic_extension(paper.p2_example11(), v)
        assert ext1.pdocument == ext2.pdocument
        assert ext1.selection == ext2.selection

    def test_example12_indistinguishability(self):
        v = View("v", paper.example12_view())
        ext3 = probabilistic_extension(paper.p3_example12(), v)
        ext4 = probabilistic_extension(paper.p4_example12(), v)
        assert ext3.pdocument == ext4.pdocument
        assert ext3.selection == ext4.selection

    def test_empty_view_result(self, p_per):
        ext = probabilistic_extension(p_per, View("none", parse_pattern(
            "IT-personnel/nothing")))
        assert ext.selection == {}
        assert ext.pdocument.size() == 1

    def test_rank_paths_are_isomorphism_invariant(self, p_per, ext_v2):
        from repro.workloads.synthetic import isomorphic_twin

        v = ext_v2.view
        twin = probabilistic_extension(isomorphic_twin(p_per, 1000), v)
        for original in (5, 7, 24, 54):
            assert ext_v2.provenance.anchor_positions(original) == (
                twin.provenance.anchor_positions(original + 1000)
            )


class TestProvenanceAnchoring:
    def test_anchoring_pins_occurrence(self, ext_v2):
        qr = parse_pattern("doc(v2BON)/bonus[laptop]")
        hit = boolean_probability(
            ext_v2.pdocument, qr, anchors={qr.out: ext_v2.occurrence_copies(5)}
        )
        miss = boolean_probability(
            ext_v2.pdocument, qr, anchors={qr.out: ext_v2.occurrence_copies(7)}
        )
        assert hit == Fraction(9, 10)
        assert miss == 0

    def test_never_copied_node_anchors_to_nothing(self, ext_v2):
        qr = parse_pattern("doc(v2BON)/bonus")
        assert ext_v2.occurrence_copies(9999) == ()
        assert (
            boolean_probability(
                ext_v2.pdocument,
                qr,
                anchors={qr.out: ext_v2.occurrence_copies(9999)},
            )
            == 0
        )


class TestAnchorViaMarkerDeprecated:
    def test_warns_and_builds_legacy_pattern(self):
        q = parse_pattern("doc(v)/bonus")
        with pytest.warns(DeprecationWarning, match="provenance anchor sets"):
            anchored = anchor_via_marker(q, 5)
        assert {
            parse_marker_label(n.label) for n in anchored.predicate_nodes()
        } == {5}

    def test_marker_pattern_cannot_match_id_free_extension(self, ext_v2):
        qr = parse_pattern("doc(v2BON)/bonus[laptop]")
        with pytest.warns(DeprecationWarning):
            anchored = anchor_via_marker(qr, 5)
        assert boolean_probability(ext_v2.pdocument, anchored) == 0
