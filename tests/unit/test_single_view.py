"""Unit tests for TPrewrite (Figure 6) and single-view plans (§4)."""

from fractions import Fraction

import pytest

from repro.errors import RewritingError
from repro.prob import query_answer
from repro.rewrite import (
    fact1_holds,
    fact1_reformulation_holds,
    find_deterministic_tp_rewriting,
    probabilistic_tp_plan,
    tp_rewrite,
)
from repro.tp import parse_pattern
from repro.views import View, probabilistic_extension
from repro.workloads import paper


class TestFact1:
    def test_paper_instance(self):
        assert fact1_holds(paper.q_rbon(), paper.v1_bon())

    def test_example11_instance(self):
        assert fact1_holds(paper.example11_query(), paper.example11_view())

    def test_negative_wrong_out_label(self):
        # No main-branch node of q at the view's output depth carries "name".
        assert not fact1_holds(paper.q_rbon(), parse_pattern("IT-personnel//name"))

    def test_bare_prefix_view_still_rewrites(self):
        # IT-personnel//person *does* rewrite q_RBON: the compensation
        # re-adds every predicate below depth 2.
        assert fact1_holds(paper.q_rbon(), parse_pattern("IT-personnel//person"))

    def test_negative_view_too_weak(self):
        # The view loses [name/Rick] above the compensation depth.
        q = paper.q_rbon()
        v = parse_pattern("IT-personnel//person/bonus")
        # comp(v, bonus[laptop]) = qBON ≢ qRBON.
        assert not fact1_holds(q, v) or q == paper.q_bon()

    def test_view_longer_than_query(self):
        assert not fact1_holds(parse_pattern("a/b"), parse_pattern("a/b/c"))

    def test_reformulation_agrees(self):
        cases = [
            (paper.q_rbon(), paper.v1_bon()),
            (paper.q_rbon(), paper.v2_bon()),
            (paper.q_bon(), paper.v2_bon()),
            (paper.q_bon(), paper.v1_bon()),
            (paper.example11_query(), paper.example11_view()),
            (paper.example12_query(), paper.example12_view()),
        ]
        for q, v in cases:
            assert fact1_holds(q, v) == fact1_reformulation_holds(q, v)

    def test_find_deterministic(self):
        views = [View("v1", paper.v1_bon()), View("v2", paper.v2_bon())]
        found = find_deterministic_tp_rewriting(paper.q_rbon(), views)
        assert found is not None and found.name == "v1"


class TestTPrewriteDecision:
    def test_example13_restricted_plan(self):
        plan = probabilistic_tp_plan(paper.q_bon(), View("v2BON", paper.v2_bon()))
        assert plan is not None and plan.restricted
        assert plan.k == 3

    def test_example11_no_probabilistic_plan(self):
        """Deterministic rewriting exists but f_r does not (Prop. 3)."""
        plan = probabilistic_tp_plan(
            paper.example11_query(), View("v", paper.example11_view())
        )
        assert plan is None

    def test_example12_no_probabilistic_plan(self):
        """Theorem 2's u-condition fails: [e] sits on the first token node."""
        plan = probabilistic_tp_plan(
            paper.example12_query(), View("v", paper.example12_view())
        )
        assert plan is None

    def test_example12_variant_without_predicate_has_plan(self):
        """Dropping [e] from the view makes Theorem 2 applicable."""
        q = parse_pattern("a//b/c/b/c//d")
        v = View("v", parse_pattern("a//b/c/b/c"))
        plan = probabilistic_tp_plan(q, v)
        assert plan is not None and not plan.restricted
        assert plan.u == 2

    def test_tp_rewrite_collects_all(self):
        # v2BON loses [name/Rick] above its output depth, so it cannot
        # single-view-rewrite q_RBON (that is what Example 15's intersection
        # is for); only v1BON yields a plan.
        views = [
            View("v1", paper.v1_bon()),
            View("v2", paper.v2_bon()),
            View("bad", parse_pattern("IT-personnel//name")),
        ]
        plans = tp_rewrite(paper.q_rbon(), views)
        assert {p.view.name for p in plans} == {"v1"}

    def test_tp_rewrite_collects_several(self):
        # For q_BON both views are usable (prefix views always are).
        views = [View("v2", paper.v2_bon()), View("self", paper.q_bon())]
        plans = tp_rewrite(paper.q_bon(), views)
        assert {p.view.name for p in plans} == {"v2", "self"}


class TestPlanEvaluation:
    def test_example13_probability(self, p_per, v2_bon, ext_v2):
        plan = probabilistic_tp_plan(paper.q_bon(), v2_bon)
        assert plan.fr(ext_v2, 5) == Fraction(9, 10)
        assert plan.fr(ext_v2, 7) == 0

    def test_full_answer_matches_direct(self, p_per, ext_v1, v1_bon):
        plan = probabilistic_tp_plan(paper.q_rbon(), v1_bon)
        assert plan.evaluate(ext_v1) == query_answer(p_per, paper.q_rbon())

    def test_wrong_extension_rejected(self, ext_v1, v2_bon):
        plan = probabilistic_tp_plan(paper.q_bon(), v2_bon)
        with pytest.raises(RewritingError):
            plan.fr(ext_v1, 5)

    def test_view_with_output_predicates(self):
        """Theorem 1's division by Pr(n_a ∈ v_(k)) at work."""
        from repro.pxml import ind, ordinary, pdoc

        p = pdoc(ordinary(0, "a",
                          ordinary(1, "b",
                                   ind(2, (ordinary(3, "c"), "0.5")),
                                   ind(4, (ordinary(5, "d"), "0.25")))))
        q = parse_pattern("a/b[c][d]")
        v = View("v", parse_pattern("a/b[c]"))
        plan = probabilistic_tp_plan(q, v)
        assert plan is not None
        ext = probabilistic_extension(p, v)
        assert ext.selection == {1: Fraction(1, 2)}
        assert plan.evaluate(ext) == query_answer(p, q)


class TestPlanReuseAcrossExtensions:
    """A plan's per-extension caches must never leak between extensions
    of the same view over different documents (regression test)."""

    def test_restricted_plan_reused_on_second_extension(self):
        from repro.pxml import ind, ordinary, pdoc

        q = parse_pattern("a/b[c]/d")
        view = View("v", parse_pattern("a/b[c]"))
        plan = probabilistic_tp_plan(q, view)
        assert plan is not None

        def doc(c_probability):
            return pdoc(
                ordinary(0, "a",
                         ordinary(1, "b",
                                  ind(2, (ordinary(3, "c"), c_probability)),
                                  ordinary(5, "d")))
            )

        p1, p2 = doc("0.5"), doc("0.25")
        ext1 = probabilistic_extension(p1, view)
        ext2 = probabilistic_extension(p2, view)
        # Same plan object against both extensions, both orders.
        assert plan.evaluate(ext1) == query_answer(p1, q)
        assert plan.evaluate(ext2) == query_answer(p2, q)
        assert plan.evaluate(ext1) == query_answer(p1, q)

    def test_evaluate_rejects_foreign_extension(self):
        q = parse_pattern("a/b[c]/d")
        plan = probabilistic_tp_plan(q, View("v", parse_pattern("a/b[c]")))
        assert plan is not None
        from repro.pxml import ordinary, pdoc

        p = pdoc(ordinary(0, "a", ordinary(1, "b", ordinary(2, "c"),
                                           ordinary(3, "d"))))
        other = probabilistic_extension(p, View("w", parse_pattern("a/b")))
        with pytest.raises(RewritingError):
            plan.evaluate(other)
        with pytest.raises(RewritingError):
            plan.fr(other, 3)

    def test_evaluate_rejects_mismatched_session(self):
        from repro.prob import QuerySession
        from repro.pxml import ordinary, pdoc

        q = parse_pattern("a/b[c]/d")
        view = View("v", parse_pattern("a/b[c]"))
        plan = probabilistic_tp_plan(q, view)
        p = pdoc(ordinary(0, "a", ordinary(1, "b", ordinary(2, "c"),
                                           ordinary(3, "d"))))
        ext = probabilistic_extension(p, view)
        base_session = QuerySession(p)  # base document, not the extension
        with pytest.raises(RewritingError):
            plan.evaluate(ext, session=base_session)

    def test_unrestricted_plan_reused_on_second_extension(self):
        import random

        from repro.workloads.synthetic import random_pdocument

        q = parse_pattern("a//b/c//d")
        view = View("v", parse_pattern("a//b/c"))
        plan = probabilistic_tp_plan(q, view)
        assert plan is not None and not plan.restricted
        rng = random.Random(5)
        documents = [
            random_pdocument(rng, labels=("a", "b", "c", "d"),
                             max_depth=5, max_children=2)
            for _ in range(3)
        ]
        for p in documents:
            ext = probabilistic_extension(p, view)
            assert plan.evaluate(ext) == query_answer(p, q)
