"""Unit tests for the query-splitting toolkit (§4 notation)."""

import pytest

from repro.errors import CompensationError, PatternError
from repro.tp import equivalent, parse_pattern
from repro.tp import ops
from repro.workloads import paper


class TestPrefixSuffix:
    def test_example9_prefix(self):
        # q_RBON^(2) ≡ IT-personnel//person[name/Rick][bonus/laptop]
        q = paper.q_rbon()
        expected = parse_pattern("IT-personnel//person[name/Rick][bonus/laptop]")
        assert equivalent(ops.prefix(q, 2), expected)

    def test_example9_suffix(self):
        q = paper.q_rbon()
        expected = parse_pattern("person[name/Rick]/bonus[laptop]")
        assert ops.suffix(q, 2) == expected

    def test_prefix_full_depth_is_query(self):
        q = paper.q_rbon()
        assert ops.prefix(q, 3) == q

    def test_suffix_depth_one_is_query(self):
        q = paper.q_rbon()
        assert ops.suffix(q, 1) == q

    def test_out_of_range(self):
        q = paper.q_rbon()
        with pytest.raises(PatternError):
            ops.prefix(q, 0)
        with pytest.raises(PatternError):
            ops.suffix(q, 4)

    def test_prefix_does_not_mutate(self):
        q = paper.q_rbon()
        before = q.canonical_key()
        ops.prefix(q, 1)
        assert q.canonical_key() == before


class TestTokens:
    def test_example9_tokens(self):
        q = paper.q_rbon()
        tokens = ops.tokens(q)
        assert [t.xpath() for t in tokens] == [
            "IT-personnel",
            "person[name/Rick]/bonus[laptop]",
        ]

    def test_single_token(self):
        q = parse_pattern("a/b/c")
        assert len(ops.tokens(q)) == 1

    def test_three_tokens(self):
        q = parse_pattern("a//b[x]/c//d")
        tokens = ops.tokens(q)
        assert [t.xpath() for t in tokens] == ["a", "b[x]/c", "d"]

    def test_last_token_example14(self):
        v = paper.example12_view()  # a//b[e]/c/b/c
        token = ops.last_token(v)
        assert ops.token_label_sequence(token) == ["b", "c", "b", "c"]


class TestPrefixSuffixLength:
    def test_example14(self):
        assert ops.max_prefix_suffix(["b", "c", "b", "c"]) == 2

    def test_no_overlap(self):
        assert ops.max_prefix_suffix(["a", "b", "c"]) == 0

    def test_bounded_by_half(self):
        # (a, a, a): u must satisfy 2u ≤ 3, so u = 1 even though a,a matches.
        assert ops.max_prefix_suffix(["a", "a", "a"]) == 1

    def test_single(self):
        assert ops.max_prefix_suffix(["a"]) == 0


class TestCompensation:
    def test_paper_example(self):
        result = ops.compensation(parse_pattern("a/b"), parse_pattern("b[c][d]/e"))
        assert result == parse_pattern("a/b[c][d]/e")

    def test_fact1_example(self):
        # comp(v1BON, bonus[laptop]) ≡ q_RBON
        comp = ops.compensation(paper.v1_bon(), parse_pattern("bonus[laptop]"))
        assert equivalent(comp, paper.q_rbon())

    def test_label_mismatch(self):
        with pytest.raises(CompensationError):
            ops.compensation(parse_pattern("a/b"), parse_pattern("c/d"))

    def test_compensation_with_root_only_addition(self):
        result = ops.compensation(parse_pattern("a/b"), parse_pattern("b[x]"))
        assert result == parse_pattern("a/b[x]")
        assert result.out.label == "b"


class TestDerivedQueries:
    def test_example10_q_prime(self):
        q = paper.q_rbon()
        expected = parse_pattern("IT-personnel//person[name/Rick]/bonus")
        assert equivalent(ops.q_prime(q, 3), expected)

    def test_example10_q_double_prime(self):
        q = paper.q_rbon()
        expected = parse_pattern("IT-personnel//person/bonus[laptop]")
        assert ops.q_double_prime(q, 3) == expected

    def test_example10_v_prime(self):
        v = paper.v1_bon()
        assert ops.v_prime(v) == v  # no predicates on out(v)

    def test_v_prime_strips_out_predicates(self):
        v = parse_pattern("a/b[c][d]")
        assert ops.v_prime(v) == parse_pattern("a/b")

    def test_example11_q_double_prime(self):
        q = parse_pattern("a/b[c]")
        assert ops.q_double_prime(q, 2) == parse_pattern("a/b[c]")

    def test_mb_pattern(self):
        q = paper.q_rbon()
        assert ops.mb_pattern(q) == parse_pattern("IT-personnel//person/bonus")


class TestRestricted:
    def test_restricted_when_view_mb_slash_only(self):
        v = parse_pattern("a/b/c")
        comp = parse_pattern("c//d")
        assert ops.is_restricted_rewriting(v, comp)

    def test_restricted_when_compensation_slash_only(self):
        v = parse_pattern("a//b/c")
        comp = parse_pattern("c/d")
        assert ops.is_restricted_rewriting(v, comp)

    def test_unrestricted(self):
        v = parse_pattern("a//b/c")
        comp = parse_pattern("c//d")
        assert not ops.is_restricted_rewriting(v, comp)


class TestTokenSuffixChain:
    def test_full(self):
        token = ops.last_token(paper.example12_view())
        chain = ops.token_suffix_chain(token, 4)
        assert chain == token

    def test_partial(self):
        token = ops.last_token(paper.example12_view())
        chain = ops.token_suffix_chain(token, 2)
        assert ops.token_label_sequence(chain) == ["b", "c"]

    def test_out_of_range(self):
        token = ops.last_token(paper.example12_view())
        with pytest.raises(PatternError):
            ops.token_suffix_chain(token, 5)
