"""Unit tests for the XPath-style pattern parser."""

import pytest

from repro.errors import PatternParseError
from repro.tp import Axis, parse_pattern


class TestMainBranch:
    def test_single_step(self):
        q = parse_pattern("a")
        assert q.root is q.out
        assert q.main_branch_length() == 1

    def test_child_chain(self):
        q = parse_pattern("a/b/c")
        assert [n.label for n in q.main_branch()] == ["a", "b", "c"]
        assert all(n.axis is Axis.CHILD for n in q.main_branch())

    def test_descendant_edges(self):
        q = parse_pattern("a//b/c")
        axes = [n.axis for n in q.main_branch()]
        assert axes == [Axis.CHILD, Axis.DESC, Axis.CHILD]

    def test_output_is_last_step(self):
        q = parse_pattern("a/b/c")
        assert q.out.label == "c"


class TestPredicates:
    def test_simple_predicate(self):
        q = parse_pattern("a[b]/c")
        preds = q.predicate_nodes()
        assert [p.label for p in preds] == ["b"]
        assert preds[0].axis is Axis.CHILD

    def test_descendant_predicate(self):
        q = parse_pattern("a[.//c]/b")
        (pred,) = q.predicate_nodes()
        assert pred.label == "c" and pred.axis is Axis.DESC

    def test_predicate_chain(self):
        q = parse_pattern("person[name/Rick]/bonus")
        labels = {p.label for p in q.predicate_nodes()}
        assert labels == {"name", "Rick"}

    def test_predicate_with_desc_inside(self):
        q = parse_pattern("a[b//c]/d")
        by_label = {p.label: p for p in q.predicate_nodes()}
        assert by_label["c"].axis is Axis.DESC

    def test_multiple_predicates(self):
        q = parse_pattern("a[b][c]/d")
        assert len(q.predicate_nodes()) == 2

    def test_nested_predicates(self):
        q = parse_pattern("a[b[x][y]]/c")
        assert {p.label for p in q.predicate_nodes()} == {"b", "x", "y"}

    def test_tolerated_leading_slash(self):
        q = parse_pattern("person[/name/Rick]/bonus")
        assert {p.label for p in q.predicate_nodes()} == {"name", "Rick"}

    def test_labels_with_parens_and_dashes(self):
        q = parse_pattern("doc(v1BON)/bonus[Id(5)]")
        assert q.root.label == "doc(v1BON)"
        assert q.predicate_nodes()[0].label == "Id(5)"
        q2 = parse_pattern("IT-personnel//person")
        assert q2.root.label == "IT-personnel"


class TestRoundTrip:
    @pytest.mark.parametrize("expr", [
        "a",
        "a/b/c",
        "a//b/c",
        "a[b]/c",
        "a[.//c]/b",
        "a[b//c//d]/e//d",
        "IT-personnel//person[name/Rick]/bonus[laptop]",
        "a[b][c]/d[e]//f",
    ])
    def test_parse_render_parse(self, expr):
        q = parse_pattern(expr)
        assert parse_pattern(q.xpath()) == q


class TestErrors:
    @pytest.mark.parametrize("expr", ["", "a[", "a]", "a[]/b", "a/", "/a", "a[b]]"])
    def test_rejected(self, expr):
        with pytest.raises(PatternParseError):
            parse_pattern(expr)
