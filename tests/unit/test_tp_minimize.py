"""Unit tests for TP minimization."""

from repro.tp import equivalent, minimize, parse_pattern
from repro.tp.minimize import canonical


class TestMinimize:
    def test_subsumed_sibling_removed(self):
        q = parse_pattern("a[b][b/c]/d")
        m = minimize(q)
        assert m == parse_pattern("a[b/c]/d")

    def test_desc_predicate_subsumed_by_child(self):
        q = parse_pattern("a[.//b][b]/d")
        m = minimize(q)
        assert m == parse_pattern("a[b]/d")

    def test_predicate_implied_by_main_branch(self):
        q = parse_pattern("a[.//b]//b")
        assert minimize(q) == parse_pattern("a//b")

    def test_already_minimal(self):
        q = parse_pattern("a[b][c]/d")
        assert minimize(q) == q

    def test_never_touches_main_branch(self):
        q = parse_pattern("a/a/a")
        assert minimize(q) == q

    def test_preserves_semantics(self):
        q = parse_pattern("a[b/c][b]/d[e][.//e]")
        assert equivalent(minimize(q), q)

    def test_nested_redundancy(self):
        q = parse_pattern("a[b[c][.//c]]/d")
        assert minimize(q) == parse_pattern("a[b/c]/d")

    def test_input_not_mutated(self):
        q = parse_pattern("a[b][b/c]/d")
        key = q.canonical_key()
        minimize(q)
        assert q.canonical_key() == key


class TestCanonical:
    def test_equivalent_queries_share_key(self):
        q1 = parse_pattern("a[b][b/c]/d")
        q2 = parse_pattern("a[b/c]/d")
        assert canonical(q1) == canonical(q2)

    def test_distinct_queries_differ(self):
        assert canonical(parse_pattern("a/b")) != canonical(parse_pattern("a//b"))
