"""Unit tests for exact probability conversion."""

from decimal import Decimal
from fractions import Fraction

import pytest

from repro.errors import ProbabilityError
from repro.probability import as_fraction, as_probability, prob_str


class TestAsFraction:
    def test_float_is_decimal_faithful(self):
        assert as_fraction(0.1) == Fraction(1, 10)

    def test_float_three_quarters(self):
        assert as_fraction(0.75) == Fraction(3, 4)

    def test_string(self):
        assert as_fraction("0.4725") == Fraction(189, 400)

    def test_decimal(self):
        assert as_fraction(Decimal("0.25")) == Fraction(1, 4)

    def test_int(self):
        assert as_fraction(1) == Fraction(1)

    def test_fraction_passthrough(self):
        value = Fraction(7, 9)
        assert as_fraction(value) is value

    def test_bool_rejected(self):
        with pytest.raises(ProbabilityError):
            as_fraction(True)

    def test_garbage_rejected(self):
        with pytest.raises(ProbabilityError):
            as_fraction(object())  # type: ignore[arg-type]


class TestAsProbability:
    def test_range_low(self):
        with pytest.raises(ProbabilityError):
            as_probability(-0.1)

    def test_range_high(self):
        with pytest.raises(ProbabilityError):
            as_probability("1.5")

    def test_bounds_inclusive(self):
        assert as_probability(0) == 0
        assert as_probability(1) == 1


class TestProbStr:
    def test_terminating_decimal(self):
        assert prob_str(Fraction(189, 400)) == "0.4725"

    def test_non_terminating(self):
        assert "1/3" in prob_str(Fraction(1, 3))

    def test_integer(self):
        assert prob_str(Fraction(1)).startswith("1")
