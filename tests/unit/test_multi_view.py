"""Unit tests for TP∩-rewritings (§5): Theorem 3, subset selection, TPIrewrite."""

from fractions import Fraction

from repro.prob import query_answer
from repro.pxml import ind, ordinary, pdoc
from repro.rewrite import (
    appearance_view_exists,
    find_c_independent_subset,
    theorem3_plan,
    tpi_rewrite,
)
from repro.rewrite.multi_view import Theorem3Member
from repro.tp import parse_pattern
from repro.views import View, probabilistic_extension
from repro.workloads import paper
from repro.workloads.hypergraph import (
    Hypergraph,
    has_perfect_matching,
    matching_hypergraph,
    reduction_query,
    reduction_views,
)

F = Fraction


def independent_gadget_document():
    """a → [1](0.9) ; b → [2](0.8) ; c → [3](0.7) ; d — Example 16 shaped."""
    return pdoc(ordinary(0, "a",
                         ind(10, (ordinary(11, "1"), "0.9")),
                         ordinary(1, "b",
                                  ind(20, (ordinary(21, "2"), "0.8")),
                                  ordinary(2, "c",
                                           ind(30, (ordinary(31, "3"), "0.7")),
                                           ordinary(3, "d")))))


class TestLemma3:
    def test_appearance_view_exists(self):
        q = paper.example16_query()
        assert appearance_view_exists(q, [paper.example16_views()[3]])
        assert not appearance_view_exists(q, paper.example16_views()[:3])


class TestTheorem3:
    def test_example15(self, p_per, v1_bon, v2_bon):
        exts = {
            "v1BON": probabilistic_extension(p_per, v1_bon),
            "v2BON": probabilistic_extension(p_per, v2_bon),
        }
        members = [
            Theorem3Member("v1BON", v1_bon),
            Theorem3Member("v", v2_bon, compensation_depth=3),
        ]
        plan = theorem3_plan(paper.q_rbon(), members, exts)
        assert plan is not None
        assert plan.evaluate() == {5: F(27, 40)}

    def test_rejects_dependent_views(self):
        q = paper.example16_query()
        views = [View(f"v{i+1}", v) for i, v in enumerate(paper.example16_views())]
        p = independent_gadget_document()
        exts = {v.name: probabilistic_extension(p, v) for v in views}
        assert theorem3_plan(q, views, exts) is None  # v1..v3 pairwise dependent

    def test_rejects_without_appearance_view(self):
        p = independent_gadget_document()
        q = parse_pattern("a[1]/b/c/d")
        views = [View("w", parse_pattern("a[1]/b/c/d"))]
        # Single view = the query itself but no mb(q)-containing view... the
        # view *is* the query; mb(q) ⊑ w fails due to predicate [1].
        exts = {"w": probabilistic_extension(p, views[0].pattern and views[0])}
        assert theorem3_plan(q, views, exts) is None

    def test_disjoint_predicates_product(self):
        p = independent_gadget_document()
        q = parse_pattern("a[1]/b[2]/c/d")
        views = [
            View("w1", parse_pattern("a[1]/b/c/d")),
            View("w2", parse_pattern("a/b[2]/c/d")),
            View("wapp", parse_pattern("a/b/c/d")),
        ]
        exts = {v.name: probabilistic_extension(p, v) for v in views}
        plan = theorem3_plan(q, views, exts)
        assert plan is not None
        assert plan.evaluate() == query_answer(p, q)
        assert plan.evaluate() == {3: F(9, 10) * F(8, 10)}


class TestSubsetSelection:
    def test_matching_instance_found(self):
        h = matching_hypergraph(k=2, groups=2, extra_edges=1, seed=3)
        q = reduction_query(h)
        views = reduction_views(h)
        subset = find_c_independent_subset(q, views)
        assert subset is not None
        # The subset's hyperedges partition the vertex set.
        covered = set()
        for view in subset:
            preds = {
                int(p.label)
                for p in view.pattern.predicate_nodes()
                if p.label.isdigit()
            }
            assert not (covered & preds)
            covered |= preds
        assert covered == set(range(1, h.s + 1))

    def test_no_matching_no_subset(self):
        # All edges share vertex 1: no two disjoint edges can cover 1..4.
        h = Hypergraph(4, (frozenset({1, 2}), frozenset({1, 3}),
                           frozenset({1, 4})))
        assert not has_perfect_matching(h)
        subset = find_c_independent_subset(reduction_query(h), reduction_views(h))
        assert subset is None


class TestTPIrewrite:
    def test_example16_end_to_end(self):
        q = paper.example16_query()
        p = independent_gadget_document()
        views = [View(f"v{i+1}", v) for i, v in enumerate(paper.example16_views())]
        exts = {v.name: probabilistic_extension(p, v) for v in views}
        plan = tpi_rewrite(q, views, exts)
        assert plan is not None
        assert plan.exponents["v1"] == F(1, 2)
        assert plan.evaluate() == query_answer(p, q)

    def test_insufficient_views_rejected(self):
        q = paper.example16_query()
        p = independent_gadget_document()
        views = [View("v3", paper.example16_views()[2]),
                 View("v4", paper.example16_views()[3])]
        exts = {v.name: probabilistic_extension(p, v) for v in views}
        assert tpi_rewrite(q, views, exts) is None

    def test_compensated_views_recovered(self, p_per, v1_bon, v2_bon):
        """TPIrewrite adds comp(v, q_(a)) members (§5.4) automatically."""
        q = paper.q_rbon()
        exts = {
            "v1BON": probabilistic_extension(p_per, v1_bon),
            "v2BON": probabilistic_extension(p_per, v2_bon),
        }
        plan = tpi_rewrite(q, [v1_bon, v2_bon], exts)
        assert plan is not None
        assert plan.evaluate() == query_answer(p_per, q)
