"""Unit tests for the single-pass evaluation engine.

Covers the three engine pillars — one DP traversal for all candidates,
interned bitmask goal sets behind the classic semantics, and pluggable
numeric backends — plus the stable anchoring API.
"""

from fractions import Fraction

import pytest

from repro.errors import PatternError, ProbabilityError
from repro.probability import (
    BACKENDS,
    ExactBackend,
    FastBackend,
    get_backend,
)
from repro.prob import (
    EvaluationEngine,
    ProbEvaluator,
    brute_force_boolean_probability,
    brute_force_query_answer,
    node_probability,
    query_answer,
)
from repro.prob.engine import (
    boolean_probability,
    intersection_answer,
    normalize_anchors,
)
from repro.pxml import ind, mux, ordinary, pdoc
from repro.tp import parse_pattern
from repro.workloads import paper
from repro.workloads.synthetic import personnel_pdocument, personnel_query


class TestSingleTraversal:
    """The acceptance criterion: one DP traversal regardless of answer size."""

    def test_one_visit_per_node_on_scaling_workload(self):
        p = personnel_pdocument(persons=12, projects=3, seed=7)
        q = personnel_query("project0")
        engine = EvaluationEngine(p, [q])
        candidates = engine.candidate_ids()
        assert len(candidates) > 1  # several answers, still one traversal
        answer = engine.answer(candidates)
        assert engine.visits == p.size()
        expected = {
            n: pr
            for n in sorted(candidates)
            if (pr := node_probability(p, q, n)) > 0
        }
        assert answer == expected

    def test_visits_independent_of_candidate_count(self):
        # Twice the persons → more candidates, but visits stay one per node.
        for persons in (4, 16):
            p = personnel_pdocument(persons=persons, projects=3, seed=persons)
            stats: dict = {}
            query_answer(p, personnel_query("project0"), stats=stats)
            assert stats["node_visits"] == p.size()

    def test_query_answer_stats_instrumentation(self, p_per):
        stats: dict = {}
        answer = query_answer(p_per, paper.v2_bon(), stats=stats)
        assert answer == {5: Fraction(1), 7: Fraction(1)}
        assert stats["candidates"] == 2
        assert stats["node_visits"] == p_per.size()

    def test_intersection_single_pass(self, p_per):
        stats: dict = {}
        answer = intersection_answer(
            p_per,
            [paper.v1_bon(), parse_pattern("IT-personnel//person/bonus[laptop]")],
            stats=stats,
        )
        assert answer == {5: Fraction(27, 40)}
        assert stats["node_visits"] == p_per.size()

    def test_empty_candidate_set_skips_dp(self, p_per):
        engine = EvaluationEngine(p_per, [parse_pattern("nosuchlabel")])
        assert engine.answer() == {}
        assert engine.visits == 0


class TestPinnedCombinators:
    """The blocked/pinned recombination at each p-document node kind."""

    def test_candidates_below_mux(self):
        p = pdoc(
            ordinary(0, "a",
                     mux(1,
                         (ordinary(2, "b", ordinary(3, "c")), "0.4"),
                         (ordinary(4, "b"), "0.5")))
        )
        q = parse_pattern("a/b")
        assert query_answer(p, q) == brute_force_query_answer(p, q)
        both = parse_pattern("a/b[c]")
        assert query_answer(p, both) == brute_force_query_answer(p, both)

    def test_candidates_below_ind(self):
        p = pdoc(
            ordinary(0, "a",
                     ind(1,
                         (ordinary(2, "b"), "0.5"),
                         (ordinary(3, "b", ordinary(4, "c")), "0.25"),
                         (ordinary(5, "b"), "1")))
        )
        q = parse_pattern("a/b")
        assert query_answer(p, q) == brute_force_query_answer(p, q)

    def test_candidate_with_candidate_descendants(self):
        # b-nodes nested below other b-nodes: pinning at the ancestor must
        # not let the descendant's match leak into the anchored run.
        p = pdoc(
            ordinary(0, "a",
                     ordinary(1, "b",
                              ind(2, (ordinary(3, "b"), "0.5"))))
        )
        q = parse_pattern("a//b")
        assert query_answer(p, q) == brute_force_query_answer(p, q)

    def test_nested_distributional_chain(self):
        p = pdoc(
            ordinary(0, "a",
                     mux(1,
                         (ind(2,
                              (ordinary(3, "b", ordinary(4, "c")), "0.5"),
                              (ordinary(5, "b"), "0.5")), "0.8")))
        )
        q = parse_pattern("a/b")
        assert query_answer(p, q) == brute_force_query_answer(p, q)


class TestBackends:
    def test_registry(self):
        assert {"exact", "fast", "array"} <= set(BACKENDS)
        assert get_backend("exact") is BACKENDS["exact"]
        backend = FastBackend()
        assert get_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ProbabilityError):
            get_backend("quantum")
        with pytest.raises(ProbabilityError):
            get_backend(42)

    def test_exact_is_default_and_bit_exact(self, p_per):
        answer = query_answer(p_per, paper.q_rbon())
        assert answer == {5: Fraction(27, 40)}
        assert all(isinstance(v, Fraction) for v in answer.values())

    def test_fast_agrees_on_paper_examples(self, p_per):
        for q in (paper.q_bon(), paper.q_rbon(), paper.v1_bon(), paper.v2_bon()):
            exact = query_answer(p_per, q)
            fast = query_answer(p_per, q, backend="fast")
            assert set(fast) == set(exact)
            for node_id, value in exact.items():
                assert isinstance(fast[node_id], float)
                assert abs(fast[node_id] - float(value)) < 1e-9

    def test_fast_boolean_probability(self, p_per):
        exact = boolean_probability(p_per, paper.q_bon())
        fast = boolean_probability(p_per, paper.q_bon(), backend="fast")
        assert abs(fast - float(exact)) < 1e-9

    def test_backend_conversions(self):
        assert ExactBackend().convert(0.1) == Fraction(1, 10)
        assert FastBackend().convert(Fraction(1, 4)) == 0.25
        assert FastBackend().to_fraction(0.25) == Fraction(1, 4)


class TestStableAnchors:
    def test_anchor_by_pattern_node(self, p_per):
        q = paper.v2_bon()
        engine = EvaluationEngine(p_per, [q], {q.out: 5})
        assert engine.match_probability() == Fraction(1)

    def test_anchor_by_bare_path(self, p_per):
        # path_to output anchors directly in single-pattern evaluation
        q = paper.v2_bon()
        engine = EvaluationEngine(p_per, [q], {q.path_to(q.out): 4})
        assert engine.match_probability() == Fraction(0)  # 4 is a name node
        engine = EvaluationEngine(p_per, [q], {q.path_to(q.out): 5})
        assert engine.match_probability() == Fraction(1)

    def test_anchor_by_indexed_path(self, p_per):
        q1, q2 = paper.v1_bon(), paper.v2_bon()
        engine = EvaluationEngine(
            p_per, [q1, q2], {(1, q2.path_to(q2.out)): 5}
        )
        assert engine.match_probability() == Fraction(3, 4)

    def test_bare_path_resolves_deep_node_not_prefix(self, p_per):
        # A bare (0, 0) path must mean root→child0→child0, never be
        # misread as (pattern_index=0, path=(0,)).
        q = paper.q_rbon()  # IT-personnel//person[name/Rick]/bonus[laptop]
        deep = q.node_at((0, 0))
        assert q.path_to(deep) == (0, 0)
        engine = EvaluationEngine(p_per, [q], {q.path_to(deep): 99})
        assert id(deep) in engine.anchors
        assert engine.anchors[id(deep)] == frozenset({99})

    def test_paths_survive_copies(self):
        q = parse_pattern("a/b[c]/d")
        path = q.path_to(q.out)
        copy = q.copy()
        assert copy.node_at(path).label == q.out.label
        assert copy.node_at(path) is copy.out

    def test_legacy_id_anchors_still_accepted(self, p_per):
        q = paper.v2_bon()
        assert ProbEvaluator(
            p_per, [q], {id(q.out): 5}
        ).all_match_probability() == Fraction(1)

    def test_foreign_keys_rejected(self, p_per):
        q = paper.v2_bon()
        stranger = parse_pattern("a/b")
        with pytest.raises(PatternError):
            normalize_anchors([q], {stranger.out: 5})
        with pytest.raises(PatternError):
            normalize_anchors([q], {123456789: 5})  # not an id() of q's nodes
        with pytest.raises(PatternError):
            normalize_anchors([q], {"out": 5})

    def test_bad_path_rejected(self):
        q = parse_pattern("a/b")
        with pytest.raises(PatternError):
            normalize_anchors([q], {(0, 7): 5})  # no such child
        with pytest.raises(PatternError):
            normalize_anchors([q], {(3, (0,)): 5})  # no pattern with index 3
        with pytest.raises(PatternError):
            normalize_anchors([q], {(0, "out"): 5})  # malformed path
        with pytest.raises(PatternError):
            # bare paths are ambiguous over several patterns
            normalize_anchors([q, parse_pattern("a/b")], {(0,): 5})
        with pytest.raises(PatternError):
            q.path_to(parse_pattern("a").root)  # node of another pattern

    def test_brute_force_accepts_stable_anchors(self):
        p = pdoc(ordinary(0, "a", ind(1, (ordinary(2, "b"), "0.5"))))
        q = parse_pattern("a/b")
        assert brute_force_boolean_probability(p, q, {q.out: 2}) == Fraction(1, 2)


class TestShimCompatibility:
    def test_prob_evaluator_matches_engine(self, p_per):
        q = paper.q_bon()
        shim = ProbEvaluator(p_per, [q], {id(q.out): 5})
        engine = EvaluationEngine(p_per, [q], {q.out: 5})
        assert shim.all_match_probability() == engine.match_probability()

    def test_goal_ids_exposed(self, p_per):
        q = paper.q_bon()
        shim = ProbEvaluator(p_per, [q])
        assert shim.a_goal(q.root) == shim.d_goal(q.root) + 1


class TestAnchorSets:
    """Anchor targets may be sets of admissible document node Ids."""

    def test_set_target_matches_any_member(self, p_per):
        q = paper.v2_bon()
        either = EvaluationEngine(p_per, [q], {q.out: (5, 7)})
        assert either.match_probability() == Fraction(1)
        neither = EvaluationEngine(p_per, [q], {q.out: (4,)})
        assert neither.match_probability() == Fraction(0)

    def test_empty_target_pins_to_nothing(self, p_per):
        q = paper.v2_bon()
        engine = EvaluationEngine(p_per, [q], {q.out: ()})
        assert engine.match_probability() == Fraction(0)

    def test_set_target_equals_disjunction_of_scalars(self, p_per):
        # Pr(out -> {a, b}) = Pr(out -> a) + Pr(out -> b) only absent
        # correlation; here just check it lies between max and sum, and
        # equals the brute-force Boolean with the same set anchor.
        q = paper.q_bon()
        joint = EvaluationEngine(p_per, [q], {q.out: (5, 7)}).match_probability()
        singles = [
            EvaluationEngine(p_per, [q], {q.out: n}).match_probability()
            for n in (5, 7)
        ]
        assert max(singles) <= joint <= sum(singles)
        assert joint == brute_force_boolean_probability(p_per, q, {q.out: (5, 7)})

    def test_non_iterable_target_rejected(self, p_per):
        q = paper.q_bon()
        with pytest.raises(PatternError):
            normalize_anchors([q], {q.out: object()})

    def test_string_target_is_a_scalar_not_an_iterable(self, p_per):
        # "12" must anchor to node 12 (the legacy int() coercion), never
        # be iterated into nodes 1 and 2.
        q = paper.q_bon()
        assert normalize_anchors([q], {q.out: "12"}) == {
            id(q.out): frozenset({12})
        }
        with pytest.raises(PatternError):
            normalize_anchors([q], {q.out: "bonus"})

    def test_fingerprint_abstracts_anchor_values(self, p_per):
        # Same query, different anchors: identical abstract fingerprint,
        # different target tuples — the store key separates them via
        # canonical positions, not via the table.
        q = paper.q_bon()
        e5 = EvaluationEngine(p_per, [q], {q.out: 5})
        e7 = EvaluationEngine(p_per, [q], {q.out: 7})
        t5, out5, a5 = e5.goal_table_fingerprint(e5.table_labels)
        t7, out7, a7 = e7.goal_table_fingerprint(e7.table_labels)
        assert t5 == t7 and out5 == out7
        assert a5 == ((5,),) and a7 == ((7,),)


class TestUnitFastPaths:
    def test_mixture_returns_unit_operand_unchanged(self, p_per):
        engine = EvaluationEngine(p_per, [paper.q_bon()])
        unit = {0: Fraction(1)}
        assert engine._mixture(Fraction(1, 2), unit) is unit
        other = {0: Fraction(1, 2), 3: Fraction(1, 2)}
        assert engine._mixture(Fraction(1), other) is other

    def test_mixture_still_mixes_non_unit(self, p_per):
        engine = EvaluationEngine(p_per, [paper.q_bon()])
        mixed = engine._mixture(Fraction(1, 4), {3: Fraction(1)})
        assert mixed == {0: Fraction(3, 4), 3: Fraction(1, 4)}

    def test_convolve_unit_short_circuit(self, p_per):
        engine = EvaluationEngine(p_per, [paper.q_bon()])
        unit = {0: Fraction(1)}
        other = {0: Fraction(1, 2), 3: Fraction(1, 2)}
        assert engine._convolve(unit, other) is other
        assert engine._convolve(other, unit) is other
