"""Unit tests for the RewritingCache facade."""

from fractions import Fraction

import pytest

from repro.cache import AnswerSource, RewritingCache
from repro.errors import NoRewritingError, ReproError, UnknownViewError
from repro.prob import query_answer
from repro.tp import parse_pattern
from repro.views import View
from repro.workloads import paper

F = Fraction


class TestMaterialization:
    def test_materialize_and_list(self, p_per, v2_bon):
        cache = RewritingCache(p_per)
        ext = cache.materialize(v2_bon)
        assert ext.selection == {5: F(1), 7: F(1)}
        assert [v.name for v in cache.views()] == ["v2BON"]

    def test_duplicate_rejected(self, p_per, v2_bon):
        cache = RewritingCache(p_per)
        cache.materialize(v2_bon)
        with pytest.raises(ValueError):
            cache.materialize(v2_bon)

    def test_drop(self, p_per, v2_bon):
        cache = RewritingCache(p_per)
        cache.materialize(v2_bon)
        cache.drop("v2BON")
        assert cache.views() == []

    def test_drop_unknown_view_raises(self, p_per, v2_bon):
        cache = RewritingCache(p_per)
        cache.materialize(v2_bon)
        with pytest.raises(UnknownViewError, match="nosuch"):
            cache.drop("nosuch")
        # Wraps the dict lookup failure and stays catchable both ways.
        assert issubclass(UnknownViewError, KeyError)
        assert issubclass(UnknownViewError, ReproError)
        with pytest.raises(KeyError):
            cache.drop("nosuch")
        # The failed drops left the materialized view untouched.
        assert [v.name for v in cache.views()] == ["v2BON"]

    def test_drop_unknown_view_names_survivors(self, p_per, v2_bon):
        cache = RewritingCache(p_per)
        cache.materialize(v2_bon)
        with pytest.raises(UnknownViewError, match="v2BON"):
            cache.drop("ghost")


class TestAnswering:
    def test_single_view_strategy(self, p_per, v2_bon):
        cache = RewritingCache(p_per, strict=True)
        cache.materialize(v2_bon)
        result = cache.answer(paper.q_bon())
        assert result.source is AnswerSource.SINGLE_VIEW
        assert result.answer == {5: F(9, 10)}

    def test_multi_view_strategy(self, p_per, v1_bon, v2_bon):
        # q_RBON has no single-view plan over v2BON; with both views the
        # canonical TP∩ plan (with compensated members) answers it.
        cache = RewritingCache(p_per, strict=True)
        cache.materialize(v2_bon)
        cache.materialize(v1_bon)
        result = cache.answer(paper.q_rbon())
        assert result.answer == {5: F(27, 40)}
        assert result.source in (AnswerSource.SINGLE_VIEW, AnswerSource.MULTI_VIEW)

    def test_strict_mode_raises(self, p_per, v2_bon):
        cache = RewritingCache(p_per, strict=True)
        cache.materialize(v2_bon)
        with pytest.raises(NoRewritingError):
            cache.answer(parse_pattern("IT-personnel//name"))

    def test_fallback_to_direct(self, p_per, v2_bon):
        cache = RewritingCache(p_per, strict=False)
        cache.materialize(v2_bon)
        q = parse_pattern("IT-personnel//person/name")
        result = cache.answer(q)
        assert result.source is AnswerSource.DIRECT
        assert result.answer == query_answer(p_per, q)

    def test_answerable_decision(self, p_per, v2_bon):
        cache = RewritingCache(p_per, strict=True)
        cache.materialize(v2_bon)
        assert cache.answerable(paper.q_bon())
        assert not cache.answerable(parse_pattern("IT-personnel//name"))

    def test_empty_cache(self, p_per):
        cache = RewritingCache(p_per, strict=True)
        with pytest.raises(NoRewritingError):
            cache.answer(paper.q_bon())

    def test_fast_backend_single_view(self, p_per, v2_bon):
        cache = RewritingCache(p_per, strict=True, backend="fast")
        cache.materialize(v2_bon)
        result = cache.answer(paper.q_bon())
        assert result.source is AnswerSource.SINGLE_VIEW
        assert set(result.answer) == {5}
        assert abs(result.answer[5] - 0.9) < 1e-9

    def test_fast_backend_multi_view(self, p_per, v1_bon, v2_bon):
        cache = RewritingCache(p_per, strict=True, backend="fast")
        cache.materialize(v2_bon)
        cache.materialize(v1_bon)
        result = cache.answer(paper.q_rbon())
        assert set(result.answer) == {5}
        assert abs(result.answer[5] - 27 / 40) < 1e-9

    def test_fast_backend_direct(self, p_per):
        cache = RewritingCache(p_per, backend="fast")
        q = parse_pattern("IT-personnel//person/name")
        result = cache.answer(q)
        exact = query_answer(p_per, q)
        assert set(result.answer) == set(exact)
        for node_id in exact:
            assert abs(result.answer[node_id] - float(exact[node_id])) < 1e-9


class TestAnswerMany:
    def test_batch_matches_individual_answers(self, p_per, v2_bon):
        cache = RewritingCache(p_per)
        cache.materialize(v2_bon)
        queries = [
            paper.q_bon(),                               # single-view plan
            parse_pattern("IT-personnel//person/name"),  # direct
            parse_pattern("IT-personnel//person/bonus"), # plan
            parse_pattern("IT-personnel//name"),         # direct
        ]
        reference = RewritingCache(p_per)
        reference.materialize(v2_bon)
        individually = [reference.answer(q) for q in queries]
        batched = cache.answer_many(queries)
        assert [r.answer for r in batched] == [r.answer for r in individually]
        assert [r.source for r in batched] == [r.source for r in individually]

    def test_batch_direct_queries_share_one_traversal(self, p_per):
        cache = RewritingCache(p_per)
        queries = [
            parse_pattern("IT-personnel//person/name"),
            parse_pattern("IT-personnel//name"),
            parse_pattern("IT-personnel//person"),
        ]
        before = cache.session.stats.traversals
        results = cache.answer_many(queries)
        assert cache.session.stats.traversals == before + 1
        assert all(r.source is AnswerSource.DIRECT for r in results)
        assert [r.answer for r in results] == [
            query_answer(p_per, q) for q in queries
        ]

    def test_strict_batch_raises_on_unanswerable(self, p_per, v2_bon):
        cache = RewritingCache(p_per, strict=True)
        cache.materialize(v2_bon)
        with pytest.raises(NoRewritingError):
            cache.answer_many([paper.q_bon(), parse_pattern("IT-personnel//name")])
        # Nothing was answered, so nothing may be counted.
        assert cache.stats()["total"] == 0

    def test_empty_batch(self, p_per):
        assert RewritingCache(p_per).answer_many([]) == []


class TestStats:
    def test_counts_per_source(self, p_per, v2_bon):
        cache = RewritingCache(p_per)
        cache.materialize(v2_bon)
        cache.answer(paper.q_bon())                               # single view
        cache.answer(parse_pattern("IT-personnel//person/name"))  # direct
        cache.answer(parse_pattern("IT-personnel//name"))         # direct
        stats = cache.stats()
        assert stats["SINGLE_VIEW"] == 1
        assert stats["DIRECT"] == 2
        assert stats["total"] == 3
        assert stats["session"]["traversals"] >= 1

    def test_multi_view_counted(self, p_per, v1_bon, v2_bon):
        cache = RewritingCache(p_per, strict=True)
        cache.materialize(v2_bon)
        cache.materialize(v1_bon)
        result = cache.answer(paper.q_rbon())
        stats = cache.stats()
        assert stats[result.source.name] == 1
        assert stats["total"] == 1

    def test_answer_many_counts(self, p_per, v2_bon):
        cache = RewritingCache(p_per)
        cache.materialize(v2_bon)
        cache.answer_many(
            [paper.q_bon(), parse_pattern("IT-personnel//person/name")]
        )
        stats = cache.stats()
        assert stats["SINGLE_VIEW"] == 1
        assert stats["DIRECT"] == 1
        assert stats["total"] == 2

    def test_answerable_not_counted(self, p_per, v2_bon):
        cache = RewritingCache(p_per)
        cache.materialize(v2_bon)
        cache.answerable(paper.q_bon())
        assert cache.stats()["total"] == 0
