"""Unit tests for the RewritingCache facade."""

from fractions import Fraction

import pytest

from repro.cache import AnswerSource, RewritingCache
from repro.errors import NoRewritingError
from repro.prob import query_answer
from repro.tp import parse_pattern
from repro.views import View
from repro.workloads import paper

F = Fraction


class TestMaterialization:
    def test_materialize_and_list(self, p_per, v2_bon):
        cache = RewritingCache(p_per)
        ext = cache.materialize(v2_bon)
        assert ext.selection == {5: F(1), 7: F(1)}
        assert [v.name for v in cache.views()] == ["v2BON"]

    def test_duplicate_rejected(self, p_per, v2_bon):
        cache = RewritingCache(p_per)
        cache.materialize(v2_bon)
        with pytest.raises(ValueError):
            cache.materialize(v2_bon)

    def test_drop(self, p_per, v2_bon):
        cache = RewritingCache(p_per)
        cache.materialize(v2_bon)
        cache.drop("v2BON")
        assert cache.views() == []


class TestAnswering:
    def test_single_view_strategy(self, p_per, v2_bon):
        cache = RewritingCache(p_per, strict=True)
        cache.materialize(v2_bon)
        result = cache.answer(paper.q_bon())
        assert result.source is AnswerSource.SINGLE_VIEW
        assert result.answer == {5: F(9, 10)}

    def test_multi_view_strategy(self, p_per, v1_bon, v2_bon):
        # q_RBON has no single-view plan over v2BON; with both views the
        # canonical TP∩ plan (with compensated members) answers it.
        cache = RewritingCache(p_per, strict=True)
        cache.materialize(v2_bon)
        cache.materialize(v1_bon)
        result = cache.answer(paper.q_rbon())
        assert result.answer == {5: F(27, 40)}
        assert result.source in (AnswerSource.SINGLE_VIEW, AnswerSource.MULTI_VIEW)

    def test_strict_mode_raises(self, p_per, v2_bon):
        cache = RewritingCache(p_per, strict=True)
        cache.materialize(v2_bon)
        with pytest.raises(NoRewritingError):
            cache.answer(parse_pattern("IT-personnel//name"))

    def test_fallback_to_direct(self, p_per, v2_bon):
        cache = RewritingCache(p_per, strict=False)
        cache.materialize(v2_bon)
        q = parse_pattern("IT-personnel//person/name")
        result = cache.answer(q)
        assert result.source is AnswerSource.DIRECT
        assert result.answer == query_answer(p_per, q)

    def test_answerable_decision(self, p_per, v2_bon):
        cache = RewritingCache(p_per, strict=True)
        cache.materialize(v2_bon)
        assert cache.answerable(paper.q_bon())
        assert not cache.answerable(parse_pattern("IT-personnel//name"))

    def test_empty_cache(self, p_per):
        cache = RewritingCache(p_per, strict=True)
        with pytest.raises(NoRewritingError):
            cache.answer(paper.q_bon())
