"""Unit tests for view decompositions into d-views (§5.3, Steps 1–4)."""

from fractions import Fraction

from repro.rewrite.decomposition import decompose_pattern, decompose_views
from repro.tp import ops, parse_pattern
from repro.workloads import paper

F = Fraction


class TestDecomposePattern:
    def test_example16_query(self):
        q = paper.example16_query()
        keys = decompose_pattern(q, ops.mb_pattern(q))
        # Predicates 1, 2, 3 live at distinct /-depths → three predicate
        # d-views plus the bare main-branch d-view from node d.
        assert len(set(keys)) == 4

    def test_bare_view_collapses_to_mb(self):
        q = paper.example16_query()
        keys = decompose_pattern(parse_pattern("a//d"), ops.mb_pattern(q))
        assert len(set(keys)) == 1

    def test_shared_variables_across_views(self):
        q = paper.example16_query()
        mb_q = ops.mb_pattern(q)
        v1, v2, v3, v4 = paper.example16_views()
        k1 = set(decompose_pattern(v1, mb_q))
        k2 = set(decompose_pattern(v2, mb_q))
        k3 = set(decompose_pattern(v3, mb_q))
        k4 = set(decompose_pattern(v4, mb_q))
        # v1 and v2 share the [3]-at-c d-view and the mb d-view.
        assert len(k1 & k2) == 2
        assert len(k1 & k3) == 2
        assert k4 <= k1 and k4 <= k2 and k4 <= k3

    def test_dependent_predicates_merge(self):
        # Both predicates sit on the same node: Step 2 merges them into one
        # d-view (their probabilities are not independent).
        q = parse_pattern("a[x][y]/b")
        keys = decompose_pattern(q, ops.mb_pattern(q))
        predicate_keys = set(keys)
        # One merged predicate unit + the bare mb unit from node b.
        assert len(predicate_keys) == 2

    def test_middle_token_bulk(self):
        # Middle-token predicates cannot be positioned unambiguously: one bulk.
        v = parse_pattern("a//m1[x]//m2[y]//b")
        q = parse_pattern("a//m1//m2//b")
        keys = decompose_pattern(v, ops.mb_pattern(q))
        assert len(keys) >= 1


class TestSystem:
    def test_example16_certificate(self):
        q = paper.example16_query()
        tagged = [(f"v{i+1}", v) for i, v in enumerate(paper.example16_views())]
        system = decompose_views(q, tagged)
        cert = system.certificate()
        assert cert == {
            "v1": F(1, 2),
            "v2": F(1, 2),
            "v3": F(1, 2),
            "v4": F(-1, 2),
        }

    def test_unsolvable_without_coverage(self):
        # Views covering only predicates 1 and 2 cannot express predicate 3.
        q = paper.example16_query()
        v1, v2, v3, v4 = paper.example16_views()
        system = decompose_views(q, [("v3", v3), ("v4", v4)])
        assert not system.solvable()

    def test_identical_view_is_trivial_certificate(self):
        q = paper.example16_query()
        system = decompose_views(q, [("self", q)])
        assert system.certificate() == {"self": F(1)}

    def test_two_views_suffice_with_appearance(self):
        # v1 ∩ v2 is a deterministic rewriting but S(q, {v1, v2}) cannot
        # single out Pr(n ∈ q): predicate 3 is double-counted.
        q = paper.example16_query()
        v1, v2, _, v4 = paper.example16_views()
        assert not decompose_views(q, [("v1", v1), ("v2", v2)]).solvable()
        # Adding the appearance view v4 still leaves x3 double-counted.
        assert not decompose_views(
            q, [("v1", v1), ("v2", v2), ("v4", v4)]
        ).solvable()
