"""Unit tests for the exact linear algebra (certificates, roots, powers)."""

from fractions import Fraction

import pytest

from repro.errors import LinearSystemError
from repro.rewrite.linsys import (
    ExactLinearSystem,
    exact_power,
    exact_root,
    solve_exact,
)

F = Fraction


class TestSolveExact:
    def test_simple_combination(self):
        rows = [[F(1), F(0)], [F(0), F(1)]]
        assert solve_exact(rows, [F(2), F(3)]) == [F(2), F(3)]

    def test_dependent_rows(self):
        rows = [[F(1), F(1)], [F(2), F(2)]]
        solution = solve_exact(rows, [F(3), F(3)])
        assert solution is not None
        combo = [
            solution[0] * rows[0][i] + solution[1] * rows[1][i] for i in range(2)
        ]
        assert combo == [F(3), F(3)]

    def test_not_in_rowspace(self):
        rows = [[F(1), F(1)]]
        assert solve_exact(rows, [F(1), F(2)]) is None

    def test_example16_certificate(self):
        # Rows over (x1, x2, x3, appearance); target = query row.
        rows = [
            [F(1), F(0), F(1), F(1)],
            [F(0), F(1), F(1), F(1)],
            [F(1), F(1), F(0), F(1)],
            [F(0), F(0), F(0), F(1)],
        ]
        target = [F(1), F(1), F(1), F(1)]
        solution = solve_exact(rows, target)
        assert solution == [F(1, 2), F(1, 2), F(1, 2), F(-1, 2)]

    def test_empty_system(self):
        assert solve_exact([], [F(1)]) is None


class TestExactLinearSystem:
    def test_tagged_certificate(self):
        system = ExactLinearSystem(["x", "y", "app"])
        system.add_row("v1", {"x": F(1), "app": F(1)})
        system.add_row("v2", {"y": F(1), "app": F(1)})
        system.add_row("vapp", {"app": F(1)})
        cert = system.certificate({"x": F(1), "y": F(1), "app": F(1)})
        assert cert == {"v1": F(1), "v2": F(1), "vapp": F(-1)}

    def test_missing_appearance_makes_unsolvable(self):
        # Without a bare-appearance row, v1 + v2 over-counts `app`.
        system = ExactLinearSystem(["x", "y", "app"])
        system.add_row("v1", {"x": F(1), "app": F(1)})
        system.add_row("v2", {"y": F(1), "app": F(1)})
        assert system.certificate({"x": F(1), "y": F(1), "app": F(1)}) is None

    def test_unsolvable(self):
        system = ExactLinearSystem(["x", "app"])
        system.add_row("v1", {"x": F(1), "app": F(1)})
        assert system.certificate({"app": F(1)}) is None


class TestRoots:
    def test_square_root(self):
        assert exact_root(F(9, 4), 2) == F(3, 2)

    def test_cube_root(self):
        assert exact_root(F(27, 125), 3) == F(3, 5)

    def test_irrational_rejected(self):
        with pytest.raises(LinearSystemError):
            exact_root(F(2), 2)

    def test_degree_one(self):
        assert exact_root(F(7, 3), 1) == F(7, 3)

    def test_zero_and_one(self):
        assert exact_root(F(0), 5) == 0
        assert exact_root(F(1), 5) == 1

    def test_large_values(self):
        value = F(10**30)
        assert exact_root(value * value, 2) == value


class TestExactPower:
    def test_integral(self):
        assert exact_power([(F(1, 2), F(2)), (F(3), F(-1))]) == F(1, 12)

    def test_half_exponents_example16_shape(self):
        # (v1·v2·v3/v4)^(1/2) with a perfect-square product.
        target = F(63, 125)
        v4 = F(1)
        product_should_be = target**2
        factors = [
            (product_should_be, F(1, 2)),
        ]
        assert exact_power(factors) == target

    def test_mixed_denominators(self):
        assert exact_power([(F(4), F(1, 2)), (F(8), F(1, 3))]) == F(4)

    def test_empty(self):
        assert exact_power([]) == F(1)

    def test_zero_base_negative_exponent(self):
        with pytest.raises(LinearSystemError):
            exact_power([(F(0), F(-1))])
