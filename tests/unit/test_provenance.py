"""Unit tests for the provenance layer (the Id-free ``Id(n)`` replacement).

Covers: round-trip equivalence against a legacy marker-bearing reference
implementation (``occurrence_copies`` / ``selected_ancestors_or_self`` /
``nodes_between`` answer identically), legacy decode via
:meth:`ProvenanceTable.from_markers`, digest sharing between extensions
and their base documents, and the no-silent-mis-share guarantee for
marker-era documents.
"""

import itertools

import pytest

from repro.prob import QuerySession, query_answer
from repro.pxml.pdocument import PDocument, PNode, PNodeKind
from repro.store import InMemoryStore
from repro.tp import parse_pattern
from repro.views import ProvenanceTable, View, probabilistic_extension
from repro.views.extension import ProbabilisticViewExtension
from repro.views.view import _marker_label, parse_marker_label
from repro.workloads import paper
from repro.workloads.synthetic import isomorphic_twin


# ----------------------------------------------------------------------
# Legacy reference implementation: the pre-Id-free §3.1 construction
# (markers planted in the tree), kept here as the round-trip oracle.
# ----------------------------------------------------------------------
def legacy_marker_extension(p: PDocument, view: View) -> ProbabilisticViewExtension:
    answer = query_answer(p, view.pattern)
    fresh = itertools.count(1)
    root = PNode(0, PNodeKind.ORDINARY, view.doc_label)
    bundle = PNode(next(fresh), PNodeKind.IND)
    subtree_roots: dict[int, int] = {}

    def copy_with_markers(source: PNode) -> PNode:
        copy = PNode(next(fresh), source.kind, source.label)
        if source.is_ordinary:
            copy.add_child(
                PNode(next(fresh), PNodeKind.ORDINARY, _marker_label(source.node_id))
            )
        for child in source.children:
            probability = (
                source.probabilities[child.node_id]
                if source.probabilities is not None
                else None
            )
            copy.add_child(copy_with_markers(child), probability)
        return copy

    for selected in sorted(answer):
        copy = copy_with_markers(p.node(selected))
        bundle.add_child(copy, answer[selected])
        subtree_roots[selected] = copy.node_id
    if subtree_roots:
        root.add_child(bundle)
    pdocument = PDocument(root)
    return ProbabilisticViewExtension(
        view=view,
        pdocument=pdocument,
        selection=dict(answer),
        subtree_roots=subtree_roots,
        provenance=ProvenanceTable.from_markers(pdocument),
    )


def legacy_occurrence_copies(ext: ProbabilisticViewExtension, original: int):
    """Marker-scan reference for ``occurrence_copies``."""
    marker = _marker_label(original)
    return sorted(
        node.parent.node_id
        for node in ext.pdocument.ordinary_nodes()
        if node.label == marker
    )


def legacy_nodes_between(
    ext: ProbabilisticViewExtension, ancestor: int, descendant: int
) -> int:
    """The original marker-scan ``nodes_between`` implementation."""
    sub = ext.pdocument.subdocument(ext.subtree_roots[ancestor])
    marker = _marker_label(descendant)
    target = None
    for node in sub.ordinary_nodes():
        if node.label == marker:
            target = node.parent
            break
    if target is None:
        raise KeyError(f"node {descendant} does not occur below {ancestor}")
    count = 0
    current = target
    while current is not None:
        if current.is_ordinary and parse_marker_label(current.label or "") is None:
            count += 1
        current = current.parent
    return count


def _subtree_has_marker(ext, holder: int, original: int) -> bool:
    sub = ext.pdocument.subdocument(ext.subtree_roots[holder])
    marker = _marker_label(original)
    return any(node.label == marker for node in sub.ordinary_nodes())


def legacy_selected_ancestors_or_self(ext, original):
    """Marker-scan reference: holders whose subtree bears ``Id(original)``,
    ordered top-down (the topmost holder's marker appears in the fewest
    other holders' subtrees)."""
    holders = [
        m for m in ext.subtree_roots if _subtree_has_marker(ext, m, original)
    ]
    return sorted(
        holders,
        key=lambda m: (
            sum(1 for h in holders if _subtree_has_marker(ext, h, m)),
            m,
        ),
    )


FIXTURES = [
    (paper.p_per, lambda: View("v2BON", paper.v2_bon())),
    (paper.p3_example12, lambda: View("v", paper.example12_view())),
]


@pytest.mark.parametrize("make_p,make_view", FIXTURES)
class TestRoundTripAgainstMarkers:
    """The provenance implementation answers identically to the marker one.

    The legacy extension's provenance is decoded *from its markers*
    (:meth:`ProvenanceTable.from_markers`), so both code paths run over
    the same document and must agree node-for-node.
    """

    def test_occurrence_copies(self, make_p, make_view):
        legacy = legacy_marker_extension(make_p(), make_view())
        originals = set(legacy.provenance.copy_index)
        assert originals
        for original in originals:
            assert sorted(legacy.occurrence_copies(original)) == (
                legacy_occurrence_copies(legacy, original)
            )

    def test_selected_ancestors_or_self(self, make_p, make_view):
        legacy = legacy_marker_extension(make_p(), make_view())
        modern = probabilistic_extension(make_p(), make_view())
        for original in legacy.provenance.copy_index:
            want = legacy_selected_ancestors_or_self(legacy, original)
            assert legacy.selected_ancestors_or_self(original) == want
            assert modern.selected_ancestors_or_self(original) == want

    def test_nodes_between(self, make_p, make_view):
        legacy = legacy_marker_extension(make_p(), make_view())
        modern = probabilistic_extension(make_p(), make_view())
        checked = 0
        for original in legacy.provenance.copy_index:
            for holder in legacy.selected_ancestors_or_self(original):
                want = legacy_nodes_between(legacy, holder, original)
                assert legacy.nodes_between(holder, original) == want
                assert modern.nodes_between(holder, original) == want
                checked += 1
        assert checked

    def test_selection_and_occurrences_agree(self, make_p, make_view):
        legacy = legacy_marker_extension(make_p(), make_view())
        modern = probabilistic_extension(make_p(), make_view())
        assert legacy.selection == modern.selection
        assert legacy.occurrences == modern.occurrences


class TestFromMarkers:
    def test_decodes_holders_and_originals(self):
        legacy = legacy_marker_extension(
            paper.p_per(), View("v2BON", paper.v2_bon())
        )
        table = legacy.provenance
        for original, root_copy in legacy.subtree_roots.items():
            assert table.original_of(root_copy) == original
            assert table.holder_of(root_copy) == original
        # Marker nodes themselves are never recorded as copies.
        for node in legacy.pdocument.ordinary_nodes():
            if node.label and parse_marker_label(node.label) is not None:
                assert table.original_of(node.node_id) is None

    def test_empty_for_marker_free_document(self, p_per):
        ext = probabilistic_extension(p_per, View("v2BON", paper.v2_bon()))
        assert len(ProvenanceTable.from_markers(ext.pdocument)) == 0


class TestDigestSharing:
    """The tentpole payoff: extension subtrees keep base-document digests."""

    def test_extension_subtree_digests_equal_base(self, p_per):
        ext = probabilistic_extension(p_per, View("v2BON", paper.v2_bon()))
        for original, copy_root in ext.subtree_roots.items():
            assert ext.pdocument.structural_digest(copy_root) == (
                p_per.structural_digest(original)
            )

    def test_marker_era_digests_differ_no_silent_share(self, p_per):
        # Legacy marker-bearing extensions are structurally different
        # (extra marker children), so their digests can never collide
        # with Id-free extensions' or the base document's: old warmed
        # store entries become misses, never wrong shares.
        view = View("v2BON", paper.v2_bon())
        legacy = legacy_marker_extension(p_per, view)
        modern = probabilistic_extension(p_per, view)
        assert legacy.pdocument.document_digest != modern.pdocument.document_digest
        for original in legacy.subtree_roots:
            assert legacy.pdocument.structural_digest(
                legacy.subtree_roots[original]
            ) != p_per.structural_digest(original)

    def test_extension_vs_base_evaluations_hit_same_entries(self, p_per):
        # One store serves the base document and the extension: the same
        # query over the base subdocument and over the result subdocument
        # (structurally identical now that markers are gone) must share
        # entries — the extension's cold pass starts warm.
        ext = probabilistic_extension(p_per, View("v2BON", paper.v2_bon()))
        q = parse_pattern("bonus[laptop]")
        store = InMemoryStore()
        base_answer = QuerySession(p_per.subdocument(5), store=store).answer_many([q])
        before = store.stats()["hits"]
        ext_answer = QuerySession(
            ext.result_subdocument(5), store=store
        ).answer_many([q])
        assert store.stats()["hits"] > before
        assert [set(a) for a in base_answer] != [] and len(base_answer) == len(
            ext_answer
        )

    def test_twin_extensions_hit_same_entries_cold(self, p_per):
        # Extensions of isomorphic twin documents are digest-identical:
        # the second twin's *first* store-backed pass must already hit.
        view = View("v2BON", paper.v2_bon())
        ext1 = probabilistic_extension(p_per, view)
        ext2 = probabilistic_extension(isomorphic_twin(p_per), view)
        assert ext1.pdocument.document_digest == ext2.pdocument.document_digest
        q = parse_pattern("doc(v2BON)/bonus[laptop]")
        store = InMemoryStore()
        first = QuerySession(ext1.pdocument, store=store).answer_many([q])
        before = store.stats()["hits"]
        second = QuerySession(ext2.pdocument, store=store).answer_many([q])
        assert store.stats()["hits"] > before
        assert first == second


class TestRankPaths:
    def test_requires_bound_pdocument(self):
        table = ProvenanceTable()
        table.record(1, 2, 1)
        from repro.errors import PDocumentError

        with pytest.raises(PDocumentError):
            table.rank_path(2)

    def test_anchor_positions_sorted_and_complete(self, p_per):
        ext = probabilistic_extension(p_per, View("v2BON", paper.v2_bon()))
        positions = ext.pdocument.anchor_index()
        for original, copies in ext.provenance.copy_index.items():
            got = ext.provenance.anchor_positions(original)
            assert got == tuple(sorted(positions[c] for c in copies))
