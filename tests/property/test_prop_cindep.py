"""Property tests: soundness of the syntactic c-independence test.

Whenever ``c_independent(q1, q2)`` holds, the defining product equation
must hold *exactly* on every sampled p-document and node.  (The converse —
completeness — cannot be certified by sampling; the definitive direction is
checked: an empirical counterexample implies the syntactic test said
"dependent".)
"""

import random

from hypothesis import given, settings, strategies as st

from repro.prob.evaluator import (
    intersection_node_probability,
    node_probability,
)
from repro.rewrite import c_independent
from repro.workloads.synthetic import random_pdocument, random_tree_pattern

LABELS = ("a", "b", "c")


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_syntactic_independence_implies_product_rule(seed):
    rng = random.Random(seed)
    length = rng.randint(1, 3)
    q1 = random_tree_pattern(
        rng, labels=LABELS, mb_length=length, predicate_probability=0.5
    )
    q2 = random_tree_pattern(
        rng, labels=LABELS, mb_length=rng.randint(1, 3), predicate_probability=0.5
    )
    if not c_independent(q1, q2):
        return
    p = random_pdocument(rng, labels=LABELS, max_depth=3, max_children=2)
    for n in list(p.ordinary_nodes())[:6]:
        appearance = p.appearance_probability(n.node_id)
        if appearance == 0:
            continue
        joint = intersection_node_probability(p, [q1, q2], n.node_id)
        p1 = node_probability(p, q1, n.node_id)
        p2 = node_probability(p, q2, n.node_id)
        assert joint * appearance == p1 * p2


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_empirical_counterexample_implies_syntactic_dependence(seed):
    rng = random.Random(seed)
    q1 = random_tree_pattern(
        rng, labels=LABELS, mb_length=rng.randint(1, 2), predicate_probability=0.7
    )
    q2 = random_tree_pattern(
        rng, labels=LABELS, mb_length=rng.randint(1, 2), predicate_probability=0.7
    )
    p = random_pdocument(rng, labels=LABELS, max_depth=3, max_children=2)
    violated = False
    for n in list(p.ordinary_nodes())[:6]:
        appearance = p.appearance_probability(n.node_id)
        if appearance == 0:
            continue
        joint = intersection_node_probability(p, [q1, q2], n.node_id)
        p1 = node_probability(p, q1, n.node_id)
        p2 = node_probability(p, q2, n.node_id)
        if joint * appearance != p1 * p2:
            violated = True
            break
    if violated:
        assert not c_independent(q1, q2)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_symmetry(seed):
    rng = random.Random(seed)
    q1 = random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 3))
    q2 = random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 3))
    assert c_independent(q1, q2) == c_independent(q2, q1)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_predicate_free_always_independent(seed):
    rng = random.Random(seed)
    q1 = random_tree_pattern(
        rng, labels=LABELS, mb_length=rng.randint(1, 3), predicate_probability=0.0
    )
    q2 = random_tree_pattern(
        rng, labels=LABELS, mb_length=rng.randint(1, 3), predicate_probability=0.9
    )
    assert c_independent(q1, q2)
