"""Property tests: the goal-set DP equals the possible-world semantics."""

import random

from hypothesis import given, settings, strategies as st

from repro.prob import (
    boolean_probability,
    brute_force_boolean_probability,
    brute_force_query_answer,
    query_answer,
)
from repro.prob.bruteforce import brute_force_intersection_node_probability
from repro.prob.evaluator import intersection_node_probability
from repro.pxml.worlds import enumerate_worlds
from repro.workloads.synthetic import random_pdocument, random_tree_pattern

LABELS = ("a", "b", "c")


def make_instance(seed: int):
    rng = random.Random(seed)
    p = random_pdocument(rng, labels=LABELS, max_depth=3, max_children=2)
    q = random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 3))
    return p, q


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_query_answer_matches_brute_force(seed):
    p, q = make_instance(seed)
    assert query_answer(p, q) == brute_force_query_answer(p, q)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_boolean_probability_matches_brute_force(seed):
    p, q = make_instance(seed)
    assert boolean_probability(p, q) == brute_force_boolean_probability(p, q)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_intersection_matches_brute_force(seed):
    rng = random.Random(seed)
    p = random_pdocument(rng, labels=LABELS, max_depth=3, max_children=2)
    q1 = random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 2))
    q2 = random_tree_pattern(rng, labels=LABELS, mb_length=q1.main_branch_length())
    for n in list(p.ordinary_nodes())[:6]:
        expected = brute_force_intersection_node_probability(p, [q1, q2], n.node_id)
        got = intersection_node_probability(p, [q1, q2], n.node_id)
        assert got == expected


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_worlds_form_probability_space(seed):
    rng = random.Random(seed)
    p = random_pdocument(rng, labels=LABELS, max_depth=3, max_children=2)
    worlds = enumerate_worlds(p)
    assert sum(pr for _, pr in worlds) == 1
    assert all(pr > 0 for _, pr in worlds)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_appearance_probability_matches_worlds(seed):
    rng = random.Random(seed)
    p = random_pdocument(rng, labels=LABELS, max_depth=3, max_children=2)
    worlds = enumerate_worlds(p)
    for n in list(p.ordinary_nodes())[:5]:
        from_worlds = sum(
            pr for world, pr in worlds if world.has_node(n.node_id)
        )
        assert p.appearance_probability(n.node_id) == from_worlds
