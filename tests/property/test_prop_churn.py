"""Spine-only maintenance ≡ rebuilding from scratch (ISSUE-7 tentpole).

After a random sequence of node-scoped in-place mutations — probability
scalings, relabelings, fresh-subtree attachments — every derived index
spliced by ``PDocument.mark_mutated(node)`` must equal what a document
rebuilt from scratch over the same tree computes cold: structural
digests, subtree sizes, shape digests, canonical anchor positions,
label sets, the identity digest — and query answers through a resident
:class:`QuerySession` (exactly on the ``exact`` backend; within ``1e-9``
on the ``array`` backend).  Any unsound splice (a missed ancestor, a
stale sibling rank, an un-restamped node) surfaces as a mismatch.
"""

import itertools
import random
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.prob import QuerySession, query_answer
from repro.pxml.builder import ind, ordinary
from repro.pxml.pdocument import PDocument
from repro.workloads.synthetic import random_pdocument, random_tree_pattern

LABELS = ("a", "b", "c")
TOLERANCE = 1e-9

seeds = st.integers(min_value=0, max_value=10**6)


def _mutate_scoped(p: PDocument, rng: random.Random, counter) -> None:
    """One random in-place edit, marked via node-scoped mark_mutated."""
    roll = rng.random()
    distributional = p.distributional_nodes()
    ordinary_nodes = [n for n in p.ordinary_nodes()]
    if roll < 0.4 and distributional:
        node = rng.choice(distributional)
        child = rng.choice(node.children)
        assert node.probabilities is not None
        # Scaling down keeps mux sums valid; factor 1 exercises the
        # nothing-actually-changed early exit.
        node.probabilities[child.node_id] *= Fraction(
            rng.choice((1, 1, 2, 3)), 4
        )
        p.mark_mutated(node)
    elif roll < 0.7:
        node = rng.choice(ordinary_nodes)
        node.label = rng.choice(LABELS)
        p.mark_mutated(node)
    else:
        parent = rng.choice(ordinary_nodes)
        if rng.random() < 0.5:
            attached = ordinary(next(counter), rng.choice(LABELS))
        else:
            attached = ind(
                next(counter),
                (ordinary(next(counter), rng.choice(LABELS)), "0.5"),
            )
        parent.add_child(attached)
        p.mark_mutated(parent)


def _fresh_counter(p: PDocument):
    return itertools.count(max(n.node_id for n in p.nodes()) + 1)


def _assert_indexes_match_scratch(p: PDocument) -> None:
    scratch = p.subdocument(p.root.node_id)
    digests, sizes = p.structural_index()
    scratch_digests, scratch_sizes = scratch.structural_index()
    assert digests == scratch_digests
    assert sizes == scratch_sizes
    assert p._structural_index[3] == scratch._structural_index[3]  # shapes
    assert p.anchor_index() == scratch.anchor_index()
    assert p.label_index() == scratch.label_index()
    assert p.identity_digest() == scratch.identity_digest()


@settings(max_examples=40, deadline=None)
@given(seeds)
def test_spine_splice_equals_scratch_rebuild(seed):
    rng = random.Random(seed)
    p = random_pdocument(rng, labels=LABELS, max_depth=4, max_children=3)
    counter = _fresh_counter(p)
    # Populate every index first so mutations exercise the splice path,
    # never the lazy full rebuild.
    p.structural_index(), p.anchor_index(), p.label_index()
    p.identity_digest()
    for _ in range(rng.randint(1, 6)):
        _mutate_scoped(p, rng, counter)
        _assert_indexes_match_scratch(p)


@settings(max_examples=25, deadline=None)
@given(seeds)
def test_resident_session_answers_match_scratch_rebuild(seed):
    rng = random.Random(seed)
    p = random_pdocument(rng, labels=LABELS, max_depth=4, max_children=3)
    counter = _fresh_counter(p)
    queries = [
        random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 3))
        for _ in range(2)
    ]
    exact_session = QuerySession(p)
    array_session = QuerySession(p, backend="array")
    exact_session.answer_many(queries)
    array_session.answer_many(queries)
    for _ in range(rng.randint(1, 4)):
        _mutate_scoped(p, rng, counter)
        scratch = p.subdocument(p.root.node_id)
        expected = [query_answer(scratch, q) for q in queries]
        assert exact_session.answer_many(queries) == expected
        for want, got in zip(expected, array_session.answer_many(queries)):
            keys = set(want) | {k for k, v in got.items() if float(v) > 1e-12}
            for k in keys:
                assert abs(float(got.get(k, 0.0)) - float(want.get(k, 0))) < (
                    TOLERANCE
                )
    # Every mutation was node-scoped: the sessions must have absorbed
    # them as spine refreshes, never as full resets.
    assert exact_session.stats.invalidations == 0
    assert exact_session.stats.spine_refreshes > 0
