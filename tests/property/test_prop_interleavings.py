"""Property tests: interleavings capture intersection semantics exactly.

``n ∈ (q1 ∩ q2)(d)  ⟺  n ∈ I(d)`` for some interleaving ``I`` — on every
world sampled from random p-documents.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.pxml.worlds import enumerate_worlds
from repro.tp import contains, evaluate
from repro.tpi import interleavings
from repro.workloads.synthetic import random_pdocument, random_tree_pattern

LABELS = ("a", "b")


def sample_pair(seed: int):
    rng = random.Random(seed)
    length = rng.randint(1, 3)
    q1 = random_tree_pattern(
        rng, labels=LABELS, mb_length=length, predicate_probability=0.3
    )
    q2 = random_tree_pattern(
        rng, labels=LABELS, mb_length=rng.randint(1, 3), predicate_probability=0.3
    )
    return rng, q1, q2


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_union_of_interleavings_equals_intersection(seed):
    rng, q1, q2 = sample_pair(seed)
    candidates = interleavings([q1, q2])
    p = random_pdocument(rng, labels=LABELS, max_depth=3, max_children=2)
    for world, _ in enumerate_worlds(p)[:12]:
        direct = evaluate(q1, world) & evaluate(q2, world)
        via_union = set()
        for candidate in candidates:
            via_union |= evaluate(candidate, world)
        assert direct == via_union


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_interleavings_contained_in_components(seed):
    _, q1, q2 = sample_pair(seed)
    for candidate in interleavings([q1, q2]):
        assert contains(q1, candidate)
        assert contains(q2, candidate)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_no_interleaving_means_empty_intersection(seed):
    rng, q1, q2 = sample_pair(seed)
    if interleavings([q1, q2]):
        return
    p = random_pdocument(rng, labels=LABELS, max_depth=3, max_children=2)
    for world, _ in enumerate_worlds(p)[:12]:
        assert not (evaluate(q1, world) & evaluate(q2, world))
