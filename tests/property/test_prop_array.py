"""Property tests for the vectorized ``array`` backend.

The PR-6 acceptance invariant: on random p-documents and random query
batches, the ``array`` backend agrees with ``exact`` within ``1e-9`` —
for ``answer_many`` (the stacked blocked/pinned pass) and
``boolean_many`` (the stacked unpinned pass, plain and anchored),
store-backed and store-free, cold and warm alike.  A width-threshold of
one forces the exact per-subtree fallback on every kernel and must
change nothing but the arithmetic domain.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.probability_array import ArrayBackend
from repro.prob import QuerySession, query_answer
from repro.prob.engine import boolean_probability, node_probability
from repro.store import InMemoryStore
from repro.workloads.synthetic import random_pdocument, random_tree_pattern

LABELS = ("a", "b", "c")
TOLERANCE = 1e-9

seeds = st.integers(min_value=0, max_value=10**6)


def make_batch(seed: int, max_queries: int = 3):
    rng = random.Random(seed)
    p = random_pdocument(rng, labels=LABELS, max_depth=4, max_children=3)
    queries = [
        random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 4))
        for _ in range(rng.randint(1, max_queries))
    ]
    return p, queries


def assert_close(exact: dict, got: dict):
    keys = set(exact) | {k for k, v in got.items() if float(v) > 1e-12}
    for k in keys:
        assert abs(float(exact.get(k, 0)) - float(got.get(k, 0.0))) < TOLERANCE


@settings(max_examples=30, deadline=None)
@given(seeds)
def test_answer_many_matches_exact(seed):
    p, queries = make_batch(seed)
    expected = [query_answer(p, q) for q in queries]
    session = QuerySession(p, backend="array")
    for _ in range(2):  # cold pass, then the plan-memoized warm repeat
        got = session.answer_many(queries)
        for d_exact, d_got in zip(expected, got):
            assert_close(d_exact, d_got)


@settings(max_examples=20, deadline=None)
@given(seeds)
def test_answer_many_store_free(seed):
    p, queries = make_batch(seed)
    expected = [query_answer(p, q) for q in queries]
    session = QuerySession(p, backend="array", memoize=False)
    for _ in range(2):
        got = session.answer_many(queries)
        for d_exact, d_got in zip(expected, got):
            assert_close(d_exact, d_got)


@settings(max_examples=20, deadline=None)
@given(seeds)
def test_answer_many_shared_store(seed):
    # Two sessions sharing one store: the second warms from the first's
    # combined stacked entries and must agree identically.
    p, queries = make_batch(seed)
    expected = [query_answer(p, q) for q in queries]
    store = InMemoryStore()
    for _ in range(2):
        got = QuerySession(p, backend="array", store=store).answer_many(
            queries
        )
        for d_exact, d_got in zip(expected, got):
            assert_close(d_exact, d_got)


@settings(max_examples=25, deadline=None)
@given(seeds)
def test_boolean_many_matches_exact(seed):
    p, queries = make_batch(seed)
    session = QuerySession(p, backend="array")
    items = []
    expected = []
    for q in queries:
        items.append(q)
        expected.append(float(boolean_probability(p, q)))
        candidates = sorted(query_answer(p, q))
        if candidates:
            items.append((q, {q.out: candidates[0]}))
            expected.append(float(node_probability(p, q, candidates[0])))
    for _ in range(2):  # cold + warm (anchored entries probe the store)
        got = session.boolean_many(items)
        for e, g in zip(expected, got):
            assert abs(e - float(g)) < TOLERANCE


@settings(max_examples=15, deadline=None)
@given(seeds)
def test_width_threshold_fallback_is_transparent(seed):
    p, queries = make_batch(seed)
    expected = [query_answer(p, q) for q in queries]
    backend = ArrayBackend(width_threshold=1)
    got = QuerySession(p, backend=backend).answer_many(queries)
    for d_exact, d_got in zip(expected, got):
        assert_close(d_exact, d_got)
