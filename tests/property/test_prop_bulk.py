"""Property tests for the bulk store protocol (ISSUE-10).

The acceptance bar: a probe-plan (bulk) pass is *observably identical*
to the per-key pass — same answers (bit-exact on ``exact``, within
``1e-9`` on ``array``) AND the same ``stats()`` hit/miss/put accounting
— on random p-documents and query batches, against memory and SQLite
stores, cold, warm, warm-from-disk, and across spine-only in-place
mutations (``mark_mutated(node)``).  Only the round-trip *shape* (the
``bulk_probes``/``bulk_probe_keys``/``flushes`` counters) may differ
between the arms.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.prob import QuerySession, query_answer
from repro.pxml.pdocument import PDocument
from repro.store import InMemoryStore, SqliteStore
from repro.workloads.synthetic import random_pdocument, random_tree_pattern

LABELS = ("a", "b", "c")
TOLERANCE = 1e-9

#: The stats() keys that must match between the bulk and per-key arms.
#: (bulk_probes / bulk_probe_keys / flushes are the round-trip shape —
#: exactly what the two arms legitimately differ in.)
ACCOUNTING = (
    "hits", "misses", "puts",
    "anchored_hits", "anchored_misses", "anchored_puts",
    "entries",
)


def make_batch(seed: int, max_queries: int = 3):
    rng = random.Random(seed)
    p = random_pdocument(rng, labels=LABELS, max_depth=4, max_children=3)
    queries = [
        random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 4))
        for _ in range(rng.randint(1, max_queries))
    ]
    return p, queries, rng


def mutate_node(p: PDocument, rng: random.Random) -> None:
    """A random in-place edit with node-scoped ``mark_mutated(node)``."""
    distributional = p.distributional_nodes()
    ordinary = [n for n in p.ordinary_nodes() if n is not p.root]
    if distributional and (not ordinary or rng.random() < 0.5):
        node = rng.choice(distributional)
        child = rng.choice(node.children)
        assert node.probabilities is not None
        node.probabilities[child.node_id] *= Fraction(rng.choice((0, 1, 2)), 2)
    elif ordinary:
        node = rng.choice(ordinary)
        node.label = rng.choice(LABELS)
    else:
        return  # a root-only document has nothing to churn
    p.mark_mutated(node)


def accounting(store) -> dict:
    stats = store.stats()
    return {key: stats[key] for key in ACCOUNTING}


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_bulk_matches_perkey_on_memory_store(seed):
    # Same document, same batch, one session per arm on its own store;
    # interleaved node-scoped mutations churn the digests under both.
    p, queries, rng = make_batch(seed)
    perkey = QuerySession(p, store=InMemoryStore(), bulk_store=False)
    bulk = QuerySession(p, store=InMemoryStore(), bulk_store=True)
    for round_ in range(3):
        expected = [query_answer(p, q) for q in queries]
        assert perkey.answer_many(queries) == expected
        assert bulk.answer_many(queries) == expected
        assert accounting(perkey.store) == accounting(bulk.store)
        if round_ < 2:
            mutate_node(p, rng)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_bulk_matches_perkey_on_sqlite_warm_from_disk(
    tmp_path_factory, seed
):
    # Cold fill, then a simulated restart (fresh lazy store over the
    # same file): the warm-from-disk pass must serve identical answers
    # and identical hit/miss/put counts whichever probe shape runs.
    p, queries, _ = make_batch(seed)
    expected = [query_answer(p, q) for q in queries]
    tmp = tmp_path_factory.mktemp("bulk")
    snapshots = {}
    for arm, forced in (("perkey", False), ("bulk", None)):
        # bulk=None follows prefers_bulk, which is True for a live
        # SqliteStore — the production default takes the bulk path.
        path = tmp / f"{arm}_{seed}.db"
        store = SqliteStore(path, preload=False)
        assert store.prefers_bulk
        cold = QuerySession(p, store=store, bulk_store=forced)
        assert cold.answer_many(queries) == expected
        cold_counts = accounting(store)
        store.close()
        reopened = SqliteStore(path, preload=False)
        warm = QuerySession(p, store=reopened, bulk_store=forced)
        assert warm.answer_many(queries) == expected
        warm_counts = accounting(reopened)
        if arm == "bulk":
            assert reopened.bulk_probes > 0
        reopened.close()
        snapshots[arm] = (cold_counts, warm_counts)
    assert snapshots["perkey"] == snapshots["bulk"]


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_bulk_matches_perkey_on_stacked_array_pass(seed):
    # The stacked (array-backend) pass has its own probe/save loop; its
    # bulk plan must preserve answers within 1e-9 of exact and keep the
    # combined-key store accounting identical to per-key stacked runs.
    pytest.importorskip("numpy")
    p, queries, rng = make_batch(seed)
    exact = [query_answer(p, q) for q in queries]
    perkey = QuerySession(p, backend="array", store=InMemoryStore(),
                          bulk_store=False)
    bulk = QuerySession(p, backend="array", store=InMemoryStore(),
                        bulk_store=True)
    for session in (perkey, bulk):
        for answers in (session.answer_many(queries),
                        session.answer_many(queries)):
            for got, want in zip(answers, exact):
                for node_id in set(got) | set(want):
                    assert abs(
                        got.get(node_id, 0.0) - float(want.get(node_id, 0))
                    ) < TOLERANCE
    assert accounting(perkey.store) == accounting(bulk.store)
