"""Property tests for the single-pass engine and its numeric backends.

Two invariants on random p-documents and patterns:

* the single-pass engine (all candidates in one traversal) agrees
  *exactly* with the per-candidate anchored DP (``node_probability``);
* the ``fast`` float backend agrees with ``exact`` within ``1e-9``.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.prob import EvaluationEngine, node_probability, query_answer
from repro.prob.engine import boolean_probability, intersection_answer
from repro.prob.evaluator import intersection_node_probability
from repro.workloads.synthetic import random_pdocument, random_tree_pattern

LABELS = ("a", "b", "c")
TOLERANCE = 1e-9


def make_instance(seed: int):
    rng = random.Random(seed)
    p = random_pdocument(rng, labels=LABELS, max_depth=4, max_children=3)
    q = random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 4))
    return p, q


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_single_pass_matches_per_candidate_exactly(seed):
    p, q = make_instance(seed)
    engine = EvaluationEngine(p, [q])
    candidates = engine.candidate_ids()
    answer = engine.answer(candidates)
    expected = {
        n: pr
        for n in sorted(candidates)
        if (pr := node_probability(p, q, n)) > 0
    }
    assert answer == expected
    if candidates:  # the single traversal, asserted on every instance
        assert engine.visits == p.size()


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_fast_backend_agrees_with_exact(seed):
    p, q = make_instance(seed)
    exact = query_answer(p, q)
    fast = query_answer(p, q, backend="fast")
    for node_id in set(exact) | set(fast):
        assert abs(fast.get(node_id, 0.0) - float(exact.get(node_id, 0))) < TOLERANCE


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_fast_boolean_probability_agrees(seed):
    p, q = make_instance(seed)
    exact = boolean_probability(p, q)
    fast = boolean_probability(p, q, backend="fast")
    assert abs(fast - float(exact)) < TOLERANCE


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_intersection_single_pass_matches_per_candidate(seed):
    rng = random.Random(seed)
    p = random_pdocument(rng, labels=LABELS, max_depth=3, max_children=2)
    q1 = random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 3))
    q2 = random_tree_pattern(rng, labels=LABELS, mb_length=q1.main_branch_length())
    answer = intersection_answer(p, [q1, q2])
    engine = EvaluationEngine(p, [q1, q2])
    expected = {}
    for n in sorted(engine.candidate_ids()):
        pr = intersection_node_probability(p, [q1, q2], n)
        if pr > 0:
            expected[n] = pr
    assert answer == expected
