"""Property tests for Id-free extensions and cross-twin store sharing.

The ISSUE-9 acceptance bar: on random p-documents and their isomorphic
twins, marker-free extensions (a) assign the *same* structural digests to
shared subtrees — equal to the base document's own digests and equal
across twins, (b) answer rewriting plans identically with and without a
memo store (bit-exactly on ``exact``, within ``1e-9`` on ``array``), and
(c) let the second twin's *first, cold* store-backed plan evaluation hit
entries warmed by the first twin.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.rewrite import probabilistic_tp_plan
from repro.store import InMemoryStore
from repro.tp import parse_pattern
from repro.views import View, probabilistic_extension
from repro.workloads.synthetic import isomorphic_twin, random_pdocument

LABELS = ("a", "b", "c", "d")
QUERY = "a//b[c]/d"
VIEW = "a//b[c]"
TOLERANCE = 1e-9
TWIN_OFFSET = 10_000_000


def make_doc(seed: int):
    rng = random.Random(seed)
    return random_pdocument(rng, labels=LABELS, max_depth=4, max_children=3)


def make_view() -> View:
    return View("v", parse_pattern(VIEW))


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_twin_extensions_share_structural_digests(seed):
    # Marker-free copying preserves subtree structure bit-for-bit: every
    # result subtree keeps its base-document digest, and the twin's
    # extension — built from disjoint node Ids — is digest-identical.
    p1 = make_doc(seed)
    p2 = isomorphic_twin(p1, TWIN_OFFSET)
    view = make_view()
    e1 = probabilistic_extension(p1, view)
    e2 = probabilistic_extension(p2, view)
    assert e1.pdocument.document_digest == e2.pdocument.document_digest
    for original, copy_root in e1.subtree_roots.items():
        digest = e1.pdocument.structural_digest(copy_root)
        assert digest == p1.structural_digest(original)
        assert digest == e2.pdocument.structural_digest(
            e2.subtree_roots[original + TWIN_OFFSET]
        )
    # ...and the provenance rank paths agree across the twins.
    for original in e1.provenance.copy_index:
        assert e1.provenance.anchor_positions(original) == (
            e2.provenance.anchor_positions(original + TWIN_OFFSET)
        )


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_store_backed_plan_matches_store_free_across_twins(seed):
    # One store serves the plan over an extension and over its twin's
    # extension: answers must equal fresh store-free evaluation (any
    # unsound cross-twin key share would surface as a wrong exact
    # answer), and — since the extensions are digest-identical — the
    # twin's first pass must already hit the warmed entries.
    p1 = make_doc(seed)
    p2 = isomorphic_twin(p1, TWIN_OFFSET)
    q = parse_pattern(QUERY)
    view = make_view()
    plan_free = probabilistic_tp_plan(q, view)
    assert plan_free is not None
    e1 = probabilistic_extension(p1, view)
    e2 = probabilistic_extension(p2, view)
    baseline = plan_free.evaluate(e1)

    store = InMemoryStore()
    plan_store = probabilistic_tp_plan(q, view, store=store)
    assert plan_store.evaluate(e1) == baseline
    before = store.stats()["hits"]
    assert plan_store.evaluate(e2) == {
        node_id + TWIN_OFFSET: probability
        for node_id, probability in baseline.items()
    }
    if baseline:
        # the twin's first, cold pass hits the first twin's entries
        assert store.stats()["hits"] > before


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_store_backed_array_plan_within_tolerance(seed):
    p = make_doc(seed)
    q = parse_pattern(QUERY)
    view = make_view()
    exact_plan = probabilistic_tp_plan(q, view)
    assert exact_plan is not None
    ext = probabilistic_extension(p, view)
    exact = exact_plan.evaluate(ext)
    array_plan = probabilistic_tp_plan(
        q, view, backend="array", store=InMemoryStore()
    )
    approximate = array_plan.evaluate(ext)
    for node_id in set(exact) | set(approximate):
        assert abs(
            float(approximate.get(node_id, 0.0)) - float(exact.get(node_id, 0))
        ) < TOLERANCE
