"""Property tests for structural-store memoization.

The ISSUE-3 acceptance bar: session results with structural-store
memoization equal store-free sequential evaluation — exactly on the
``exact`` backend, within ``1e-9`` on ``fast`` — on random p-documents
and query batches, with the store *shared across two different random
documents* (where an unsound structural key would leak a distribution
between lookalike subtrees), and across interleaved in-place mutations
that must invalidate digests and memo entries.
"""

import random
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.prob import EvaluationEngine, QuerySession, query_answer
from repro.pxml.pdocument import PDocument
from repro.store import InMemoryStore, SqliteStore
from repro.workloads.synthetic import (
    churn_workload,
    isomorphic_twin,
    random_pdocument,
    random_tree_pattern,
)

LABELS = ("a", "b", "c")
TOLERANCE = 1e-9
TWIN_OFFSET = 10_000_000


def make_batch(seed: int, max_queries: int = 3):
    rng = random.Random(seed)
    p = random_pdocument(rng, labels=LABELS, max_depth=4, max_children=3)
    queries = [
        random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 4))
        for _ in range(rng.randint(1, max_queries))
    ]
    return p, queries, rng


def mutate_in_place(p: PDocument, rng: random.Random) -> None:
    """A random in-place edit followed by ``mark_mutated()``."""
    distributional = p.distributional_nodes()
    ordinary_nodes = [
        n for n in p.ordinary_nodes() if n is not p.root
    ]
    if distributional and (not ordinary_nodes or rng.random() < 0.5):
        node = rng.choice(distributional)
        child = rng.choice(node.children)
        assert node.probabilities is not None
        node.probabilities[child.node_id] *= Fraction(rng.choice((0, 1, 2)), 2)
    elif ordinary_nodes:
        rng.choice(ordinary_nodes).label = rng.choice(LABELS)
    p.mark_mutated()


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_shared_store_matches_sequential_exactly(seed):
    # One store serves two documents and repeated (warm) batches: any
    # cross-document or cross-subtree key collision would surface as a
    # wrong exact answer.
    p1, queries1, rng = make_batch(seed)
    p2, queries2, _ = make_batch(seed + 1)
    store = InMemoryStore()
    for p, queries in ((p1, queries1), (p2, queries2), (p1, queries1)):
        session = QuerySession(p, store=store)
        for _ in range(2):
            assert session.answer_many(queries) == [
                query_answer(p, q) for q in queries
            ]


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_store_backed_fast_within_tolerance(seed):
    p, queries, _ = make_batch(seed)
    exact = [query_answer(p, q) for q in queries]
    fast = QuerySession(p, backend="fast", store=InMemoryStore()).answer_many(
        queries
    )
    for d_exact, d_fast in zip(exact, fast):
        for node_id in set(d_exact) | set(d_fast):
            assert abs(
                d_fast.get(node_id, 0.0) - float(d_exact.get(node_id, 0))
            ) < TOLERANCE


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_mutations_invalidate_digests_and_memo(seed):
    # Interleave queries and in-place mutations on one store-backed
    # session: after every mutation the structural digests change on the
    # touched path, so stale entries must stop matching and answers must
    # equal fresh store-free evaluation of the *mutated* document.
    p, queries, rng = make_batch(seed)
    session = QuerySession(p, store=InMemoryStore())
    for _ in range(3):
        assert session.answer_many(queries) == [
            query_answer(p, q) for q in queries
        ]
        mutate_in_place(p, rng)
    assert session.answer_many(queries) == [
        query_answer(p, q) for q in queries
    ]


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_sqlite_store_round_trip_matches(tmp_path_factory, seed):
    # Cold evaluation fills a SQLite store; a fresh session over a fresh
    # store instance (same file — a simulated restart) must reproduce
    # the answers bit-exactly from disk.
    p, queries, _ = make_batch(seed)
    path = tmp_path_factory.mktemp("store") / f"memo_{seed}.db"
    store = SqliteStore(path)
    first = QuerySession(p, store=store).answer_many(queries)
    store.close()
    reopened = SqliteStore(path)
    second = QuerySession(p, store=reopened).answer_many(queries)
    reopened.close()
    assert first == second == [query_answer(p, q) for q in queries]


def _anchor_targets(p: PDocument, q) -> list[int]:
    """A few document nodes carrying the query's output label."""
    return sorted(
        n.node_id
        for n in p.ordinary_nodes()
        if n.label == q.out.label
    )[:3]


def _check_anchored(session, p, queries, offset, backend, tolerance):
    """Anchored store-backed answers ≡ fresh store-free engine runs."""
    for q in queries:
        targets = _anchor_targets(p, q)
        if not targets:
            continue
        got = session.boolean_many(
            [(q, {q.out: n + offset}) for n in targets]
        )
        for n, value in zip(targets, got):
            expected = EvaluationEngine(
                session.p, [q], {q.out: n + offset}, backend=backend
            ).match_probability()
            if tolerance is None:
                assert value == expected
            else:
                assert abs(value - expected) < tolerance


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_anchored_store_backed_matches_store_free_across_twins(seed):
    # The ISSUE-5 satellite: anchored evaluations keyed by canonical
    # anchor positions, shared through one store across two isomorphic
    # documents with disjoint node Ids, must equal fresh store-free
    # anchored engine runs — exactly on "exact", within 1e-9 on "fast" —
    # including after in-place mutations bump the epoch.  An unsound
    # position encoding would leak a distribution between lookalike
    # subtrees with differently-placed anchors and surface here.
    p1, queries, rng = make_batch(seed)
    p2 = isomorphic_twin(p1, TWIN_OFFSET)
    store = InMemoryStore()
    for backend, tolerance in (("exact", None), ("fast", TOLERANCE)):
        s1 = QuerySession(p1, backend=backend, store=store)
        s2 = QuerySession(p2, backend=backend, store=store)
        before = store.anchored_hits
        _check_anchored(s1, p1, queries, 0, backend, tolerance)
        _check_anchored(s2, p1, queries, TWIN_OFFSET, backend, tolerance)
        if any(_anchor_targets(p1, q) for q in queries):
            # the twin's first, cold pass hits p1's anchored entries
            assert store.anchored_hits > before
    mutate_in_place(p1, rng)
    s1 = QuerySession(p1, store=store)
    _check_anchored(s1, p1, queries, 0, "exact", None)
    # the untouched twin keeps matching its (and p1's pre-mutation) keys
    _check_anchored(s2, p1, queries, TWIN_OFFSET, "fast", TOLERANCE)


def test_churn_workload_store_equivalence():
    # The full churn plan (satellite): batches interleaved with epoch-
    # bumping mutations, against one persistent session + shared store.
    p, steps = churn_workload(persons=4, projects=2, rounds=2, seed=13)
    store = InMemoryStore()
    session = QuerySession(p, store=store)
    for kind, payload in steps:
        if kind == "mutate":
            payload()
        else:
            assert session.answer_many(payload) == [
                query_answer(p, q) for q in payload
            ]
    # Node-scoped mutations are absorbed as spine refreshes, not resets.
    assert session.stats.spine_refreshes == 4  # one per mutation epoch
    assert session.stats.invalidations == 0
    assert store.stats()["hits"] > 0
    assert store.stats()["spine_recomputes"] == 4
