"""Property tests for the QuerySession batch layer.

The central invariant (ISSUE 2's acceptance bar): ``answer_many`` over a
random batch equals per-query :meth:`EvaluationEngine.answer` *exactly*
on the ``exact`` backend and within ``1e-9`` on ``fast`` — on random
p-documents, random query batches, cold and warm sessions alike (warm
runs exercise cross-call memo reuse, where a stale or over-shared
distribution would surface immediately).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.prob import QuerySession, query_answer
from repro.prob.engine import boolean_probability, node_probability
from repro.workloads.synthetic import random_pdocument, random_tree_pattern

LABELS = ("a", "b", "c")
TOLERANCE = 1e-9


def make_batch(seed: int, max_queries: int = 3):
    rng = random.Random(seed)
    p = random_pdocument(rng, labels=LABELS, max_depth=4, max_children=3)
    queries = [
        random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 4))
        for _ in range(rng.randint(1, max_queries))
    ]
    return p, queries


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_answer_many_matches_sequential_exactly(seed):
    p, queries = make_batch(seed)
    session = QuerySession(p)
    batch = session.answer_many(queries)
    assert batch == [query_answer(p, q) for q in queries]


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_answer_many_fast_within_tolerance(seed):
    p, queries = make_batch(seed)
    exact = [query_answer(p, q) for q in queries]
    fast = QuerySession(p, backend="fast").answer_many(queries)
    for d_exact, d_fast in zip(exact, fast):
        for node_id in set(d_exact) | set(d_fast):
            assert abs(
                d_fast.get(node_id, 0.0) - float(d_exact.get(node_id, 0))
            ) < TOLERANCE


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_warm_session_stays_exact(seed):
    # Memo reuse across calls must never change an answer: repeat the same
    # batch, then a permuted batch, on one session.
    p, queries = make_batch(seed)
    session = QuerySession(p)
    sequential = [query_answer(p, q) for q in queries]
    assert session.answer_many(queries) == sequential
    assert session.answer_many(queries) == sequential
    reversed_queries = list(reversed(queries))
    assert session.answer_many(reversed_queries) == list(reversed(sequential))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_boolean_many_matches_engine(seed):
    p, queries = make_batch(seed)
    session = QuerySession(p)
    items = []
    expected = []
    for q in queries:
        items.append(q)
        expected.append(boolean_probability(p, q))
        candidates = sorted(query_answer(p, q))
        if candidates:
            items.append((q, {q.out: candidates[0]}))
            expected.append(node_probability(p, q, candidates[0]))
    assert session.boolean_many(items) == expected
    # Warm repeat (memo) must agree too.
    assert session.boolean_many(items) == expected


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_single_query_session_equals_query_answer(seed):
    rng = random.Random(seed)
    p = random_pdocument(rng, labels=LABELS, max_depth=4, max_children=3)
    q = random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 4))
    assert QuerySession(p).answer(q) == query_answer(p, q)
