"""Property tests for the telemetry layer (ISSUE-8).

The observer-effect invariant: turning tracing on — or asking for cost
profiles — must never change an answer.  On random p-documents and
random query batches, a traced ``answer_many`` equals the untraced one
*exactly* on the ``exact`` backend and within ``1e-9`` on ``array``
(which routes through the stacked vectorized pass), and the profiles of
a traced call always sum back to the traced wall time.
"""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.obs import disable_tracing, enable_tracing, take_spans
from repro.prob import QuerySession
from repro.workloads.synthetic import random_pdocument, random_tree_pattern

LABELS = ("a", "b", "c")
TOLERANCE = 1e-9


def make_batch(seed: int, max_queries: int = 3):
    rng = random.Random(seed)
    p = random_pdocument(rng, labels=LABELS, max_depth=4, max_children=3)
    queries = [
        random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 4))
        for _ in range(rng.randint(1, max_queries))
    ]
    return p, queries


def traced_answers(p, queries, backend):
    enable_tracing()
    try:
        return QuerySession(p, backend=backend).answer_many(queries)
    finally:
        disable_tracing()
        take_spans()


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_tracing_never_changes_exact_answers(seed):
    p, queries = make_batch(seed)
    plain = QuerySession(p).answer_many(queries)
    assert traced_answers(p, queries, "exact") == plain


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_tracing_never_changes_array_answers(seed):
    p, queries = make_batch(seed)
    plain = QuerySession(p, backend="array").answer_many(queries)
    traced = traced_answers(p, queries, "array")
    for d_plain, d_traced in zip(plain, traced):
        assert set(d_plain) == set(d_traced)
        for node_id in d_plain:
            assert abs(d_traced[node_id] - d_plain[node_id]) < TOLERANCE


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_profiles_sum_to_traced_wall_time(seed):
    p, queries = make_batch(seed)
    session = QuerySession(p)
    plain = session.answer_many(queries)
    answers, profiles = session.answer_many(queries, profile=True)
    assert answers == plain  # profiling is tracing: answers unchanged
    assert len(profiles) == len(queries)
    total = sum(
        entry["duration_s"] for entry in profiles[0].spans
    ) if profiles else 0.0
    assert math.isclose(
        sum(profile.wall_s for profile in profiles),
        total,
        rel_tol=1e-12,
        abs_tol=1e-15,
    )
    assert math.isclose(sum(profile.share for profile in profiles), 1.0)
