"""Property tests: probabilistic rewritings recover exact ground truth.

For random p-documents and (query, view) pairs where ``TPrewrite`` builds a
plan, the plan — evaluated against the *view extension only* — must equal the
direct evaluation of the query on the p-document.  This is Definition 4
verified end-to-end, and it exercises Theorem 1 (restricted) and Theorem 2
(inclusion-exclusion with α-patterns) on thousands of node probabilities.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.prob import query_answer
from repro.rewrite import probabilistic_tp_plan
from repro.tp import ops, parse_pattern
from repro.views import View, probabilistic_extension
from repro.workloads.synthetic import random_pdocument, random_tree_pattern

LABELS = ("a", "b", "c")


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_prefix_view_plans_are_exact(seed):
    rng = random.Random(seed)
    q = random_tree_pattern(
        rng, labels=LABELS, mb_length=rng.randint(2, 3), predicate_probability=0.4
    )
    k = rng.randint(1, q.main_branch_length())
    view = View("v", ops.prefix(q, k))
    plan = probabilistic_tp_plan(q, view)
    if plan is None:
        return
    p = random_pdocument(rng, labels=LABELS, max_depth=3, max_children=2)
    ext = probabilistic_extension(p, view)
    assert plan.evaluate(ext) == query_answer(p, q)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_random_view_plans_are_exact(seed):
    rng = random.Random(seed)
    q = random_tree_pattern(
        rng, labels=LABELS, mb_length=rng.randint(1, 3), predicate_probability=0.5
    )
    v = random_tree_pattern(
        rng, labels=LABELS, mb_length=rng.randint(1, 3), predicate_probability=0.3
    )
    plan = probabilistic_tp_plan(q, View("v", v))
    if plan is None:
        return
    p = random_pdocument(rng, labels=LABELS, max_depth=3, max_children=2)
    ext = probabilistic_extension(p, View("v", v))
    assert plan.evaluate(ext) == query_answer(p, q)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_unrestricted_nested_images_exact(seed):
    """Deep chains with nested view images force the inclusion-exclusion
    machinery (multiple selected ancestors, joint α-events)."""
    rng = random.Random(seed)
    q = parse_pattern("a//b/c//d")
    view = View("v", parse_pattern("a//b/c"))
    plan = probabilistic_tp_plan(q, view)
    assert plan is not None and not plan.restricted
    p = random_pdocument(
        rng, labels=("a", "b", "c", "d"), max_depth=5, max_children=2
    )
    ext = probabilistic_extension(p, view)
    assert plan.evaluate(ext) == query_answer(p, q)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_prefix_suffix_token_views_exact(seed):
    """Views whose last token has a non-trivial prefix-suffix (u ≥ 1)."""
    rng = random.Random(seed)
    q = parse_pattern("a//b/c/b/c//d")
    view = View("v", parse_pattern("a//b/c/b/c"))
    plan = probabilistic_tp_plan(q, view)
    assert plan is not None and plan.u == 2
    p = random_pdocument(
        rng, labels=("a", "b", "c", "d"), max_depth=6, max_children=2,
        distributional_bias=0.4,
    )
    ext = probabilistic_extension(p, view)
    assert plan.evaluate(ext) == query_answer(p, q)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_fast_backend_restricted_plans_agree_with_exact(seed):
    """The cache's ``fast`` backend flows through Theorem 1's quotients."""
    rng = random.Random(seed)
    q = random_tree_pattern(
        rng, labels=LABELS, mb_length=rng.randint(2, 3), predicate_probability=0.4
    )
    k = rng.randint(1, q.main_branch_length())
    view = View("v", ops.prefix(q, k))
    plan = probabilistic_tp_plan(q, view, backend="fast")
    if plan is None:
        return
    p = random_pdocument(rng, labels=LABELS, max_depth=3, max_children=2)
    fast = plan.evaluate(probabilistic_extension(p, view, backend="fast"))
    exact = query_answer(p, q)
    assert set(fast) == set(exact)
    for node_id in exact:
        assert abs(fast[node_id] - float(exact[node_id])) < 1e-9


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_fast_backend_inclusion_exclusion_agrees_with_exact(seed):
    """... and through Theorem 2's α-pattern inclusion-exclusion."""
    rng = random.Random(seed)
    q = parse_pattern("a//b/c//d")
    view = View("v", parse_pattern("a//b/c"))
    plan = probabilistic_tp_plan(q, view, backend="fast")
    assert plan is not None and not plan.restricted
    p = random_pdocument(
        rng, labels=("a", "b", "c", "d"), max_depth=5, max_children=2
    )
    fast = plan.evaluate(probabilistic_extension(p, view, backend="fast"))
    exact = query_answer(p, q)
    assert set(fast) == set(exact)
    for node_id in exact:
        assert abs(fast[node_id] - float(exact[node_id])) < 1e-9
