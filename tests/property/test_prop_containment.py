"""Property tests: containment mappings are sound w.r.t. evaluation, and
minimization preserves semantics."""

import random

from hypothesis import given, settings, strategies as st

from repro.pxml.worlds import enumerate_worlds
from repro.tp import contains, equivalent, evaluate, minimize
from repro.workloads.synthetic import random_pdocument, random_tree_pattern

LABELS = ("a", "b", "c")


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_containment_sound_on_sampled_documents(seed):
    rng = random.Random(seed)
    q1 = random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 3))
    q2 = random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 3))
    if not contains(q1, q2):  # q2 ⊑ q1
        return
    p = random_pdocument(rng, labels=LABELS, max_depth=3, max_children=2)
    for world, _ in enumerate_worlds(p)[:16]:
        assert evaluate(q2, world) <= evaluate(q1, world)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_equivalence_sound_on_sampled_documents(seed):
    rng = random.Random(seed)
    q1 = random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 3))
    q2 = random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 3))
    if not equivalent(q1, q2):
        return
    p = random_pdocument(rng, labels=LABELS, max_depth=3, max_children=2)
    for world, _ in enumerate_worlds(p)[:16]:
        assert evaluate(q1, world) == evaluate(q2, world)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_minimize_preserves_equivalence(seed):
    rng = random.Random(seed)
    q = random_tree_pattern(
        rng, labels=LABELS, mb_length=rng.randint(1, 3), predicate_probability=0.8
    )
    m = minimize(q)
    assert equivalent(m, q)
    assert m.size() <= q.size()


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_minimize_agrees_on_sampled_documents(seed):
    rng = random.Random(seed)
    q = random_tree_pattern(
        rng, labels=LABELS, mb_length=rng.randint(1, 2), predicate_probability=0.8
    )
    m = minimize(q)
    p = random_pdocument(rng, labels=LABELS, max_depth=3, max_children=2)
    for world, _ in enumerate_worlds(p)[:10]:
        assert evaluate(q, world) == evaluate(m, world)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_containment_is_a_preorder(seed):
    rng = random.Random(seed)
    qs = [
        random_tree_pattern(rng, labels=LABELS, mb_length=rng.randint(1, 3))
        for _ in range(3)
    ]
    for q in qs:
        assert contains(q, q)  # reflexive
    # transitivity on the sampled triple
    if contains(qs[0], qs[1]) and contains(qs[1], qs[2]):
        assert contains(qs[0], qs[2])
